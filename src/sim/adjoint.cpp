#include "arbiterq/sim/adjoint.hpp"

#include <cmath>
#include <stdexcept>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/sim/batched.hpp"
#include "arbiterq/sim/kernels.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::sim {

namespace {

using circuit::Complex;
using circuit::Gate;
using circuit::GateKind;
using circuit::Mat2;
using circuit::Mat4;

/// Shared derivative-matrix builders (circuit/unitary.hpp) under the
/// names this file historically used.
using circuit::d_gate_matrix_1q;
using circuit::d_gate_matrix_2q;

Mat2 d_matrix_1q(GateKind kind, const std::array<double, 3>& p, int slot) {
  return d_gate_matrix_1q(kind, p, slot);
}

Mat4 d_matrix_2q(GateKind kind, const std::array<double, 3>& p) {
  return d_gate_matrix_2q(kind, p);
}

// The bracket reductions — the exact arithmetic of
//   mu = psi; mu.apply_mat(M, ...); inner_product(lambda, mu)
// fused into one pass, including the apply kernels' diagonal dispatch —
// live in kernels.cpp so the naive and plan-based gradients below go
// through the same dispatch arm and stay mutually bit-identical in
// every mode (scalar, AVX2 strict, AVX2+FMA fast).

/// <lambda| M |psi> over whole registers.
Complex bracket_1q(const Statevector& lambda, const Statevector& psi,
                   const Mat2& m, int q) {
  return kernels::bracket_1q(lambda.amplitudes().data(),
                             psi.amplitudes().data(), psi.dim(), m, q);
}

Complex bracket_2q(const Statevector& lambda, const Statevector& psi,
                   const Mat4& m, int qb, int qa) {
  return kernels::bracket_2q(lambda.amplitudes().data(),
                             psi.amplitudes().data(), psi.dim(), m, qb, qa);
}

/// The reverse half of the plan adjoint: psi holds U|0>, ws holds the
/// matrices bind_gates built for this binding. Writes num_params
/// gradient entries to `grad`. Shared by the unbatched and batched
/// entry points so their per-sample arithmetic is the same code.
void reverse_sweep(const ExecPlan& plan, Workspace& ws, Statevector& psi,
                   int qubit, double* grad) {
  const auto np = static_cast<std::size_t>(plan.num_params());
  const exec::ExecPolicy serial{};
  Statevector& lambda = ws.lambda(plan.num_qubits(), serial);
  lambda = psi;
  lambda.apply_pauli(3, qubit);

  for (std::size_t i = 0; i < np; ++i) grad[i] = 0.0;

  const std::vector<GateEntry>& table = plan.gate_table();
  for (std::size_t k = table.size(); k-- > 0;) {
    const GateEntry& e = table[k];
    if (e.arity == 1) {
      const Mat2& md = e.dynamic
                           ? ws.dyn1q_adj[static_cast<std::size_t>(e.index)]
                           : plan.table_mat2_adjoint(e.index);
      psi.apply_mat2(md, e.q0);
      for (const GateEntry::GradTerm& t : e.grads) {
        const Complex ip = bracket_1q(
            lambda, psi, ws.dgrad1q[static_cast<std::size_t>(t.dindex)], e.q0);
        grad[static_cast<std::size_t>(t.param_index)] +=
            2.0 * t.coeff * ip.real();
      }
      lambda.apply_mat2(md, e.q0);
    } else {
      const Mat4& md = e.dynamic
                           ? ws.dyn2q_adj[static_cast<std::size_t>(e.index)]
                           : plan.table_mat4_adjoint(e.index);
      psi.apply_mat4(md, e.q0, e.q1);
      for (const GateEntry::GradTerm& t : e.grads) {
        const Complex ip = bracket_2q(
            lambda, psi, ws.dgrad2q[static_cast<std::size_t>(t.dindex)], e.q0,
            e.q1);
        grad[static_cast<std::size_t>(t.param_index)] +=
            2.0 * t.coeff * ip.real();
      }
      lambda.apply_mat4(md, e.q0, e.q1);
    }
  }

  if (plan.noisy()) {
    for (std::size_t i = 0; i < np; ++i) grad[i] *= plan.survival();
  }
}

}  // namespace

std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit, const NoiseModel* noise) {
  const bool noisy = noise != nullptr && noise->enabled();
  return adjoint_gradient_z(c, params, qubit, noise,
                            noisy ? noise->survival_probability(c) : 1.0);
}

std::vector<double> adjoint_gradient_z(const circuit::Circuit& c,
                                       std::span<const double> params,
                                       int qubit, const NoiseModel* noise,
                                       double survival) {
  if (static_cast<int>(params.size()) < c.num_params()) {
    throw std::invalid_argument("adjoint_gradient_z: params too short");
  }
  AQ_TRACE_SPAN("sim.adjoint.gradient");
  AQ_COUNTER_ADD("sim.adjoint.calls", 1);
  const bool noisy = noise != nullptr && noise->enabled();

  auto bound_of = [&](const Gate& g) {
    return noisy ? noise->biased_params(g, params) : g.bound_params(params);
  };

  // Forward pass.
  Statevector psi(c.num_qubits());
  for (const Gate& g : c.gates()) {
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      psi.apply_mat2(circuit::gate_matrix_1q(g.kind, bound), g.qubits[0]);
    } else {
      psi.apply_mat4(circuit::gate_matrix_2q(g.kind, bound), g.qubits[0],
                     g.qubits[1]);
    }
  }

  // lambda = Z_qubit psi.
  Statevector lambda = psi;
  lambda.apply_pauli(3, qubit);

  std::vector<double> grad(static_cast<std::size_t>(c.num_params()), 0.0);

  const auto& gates = c.gates();
  for (std::size_t k = gates.size(); k-- > 0;) {
    const Gate& g = gates[k];
    const auto bound = bound_of(g);
    if (g.arity() == 1) {
      const Mat2 m = circuit::gate_matrix_1q(g.kind, bound);
      const Mat2 md = circuit::mat2_adjoint(m);
      psi.apply_mat2(md, g.qubits[0]);
      for (int slot = 0; slot < g.param_count(); ++slot) {
        const circuit::ParamExpr& pe =
            g.params[static_cast<std::size_t>(slot)];
        if (pe.is_constant()) continue;
        const Complex ip = bracket_1q(lambda, psi,
                                      d_matrix_1q(g.kind, bound, slot),
                                      g.qubits[0]);
        grad[static_cast<std::size_t>(pe.index)] +=
            2.0 * pe.coeff * ip.real();
      }
      lambda.apply_mat2(md, g.qubits[0]);
    } else {
      const Mat4 m = circuit::gate_matrix_2q(g.kind, bound);
      const Mat4 md = circuit::mat4_adjoint(m);
      psi.apply_mat4(md, g.qubits[0], g.qubits[1]);
      if (g.param_count() > 0 && !g.params[0].is_constant()) {
        const Complex ip = bracket_2q(lambda, psi, d_matrix_2q(g.kind, bound),
                                      g.qubits[0], g.qubits[1]);
        grad[static_cast<std::size_t>(g.params[0].index)] +=
            2.0 * g.params[0].coeff * ip.real();
      }
      lambda.apply_mat4(md, g.qubits[0], g.qubits[1]);
    }
  }

  if (noisy) {
    for (double& gv : grad) gv *= survival;
  }
  return grad;
}

void adjoint_gradient_z(const ExecPlan& plan, std::span<const double> params,
                        int qubit, Workspace& ws, std::span<double> grad) {
  const auto np = static_cast<std::size_t>(plan.num_params());
  if (params.size() < np) {
    throw std::invalid_argument("adjoint_gradient_z: params too short");
  }
  if (grad.size() < np) {
    throw std::invalid_argument("adjoint_gradient_z: grad span too short");
  }
  AQ_COUNTER_ADD("sim.adjoint.calls", 1);
  AQ_COUNTER_ADD("sim.plan.adjoint.calls", 1);
  plan.bind_gates(params, ws);

  // The naive path evolves default-policy (serial) registers — the
  // per-sample fan-out above this layer is the parallel axis — so the
  // plan path does the same.
  const exec::ExecPolicy serial{};
  Statevector& psi = ws.state(plan.num_qubits(), serial);
  const std::vector<GateEntry>& table = plan.gate_table();
  for (const GateEntry& e : table) {
    if (e.arity == 1) {
      psi.apply_mat2(e.dynamic ? ws.dyn1q[static_cast<std::size_t>(e.index)]
                               : plan.table_mat2(e.index),
                     e.q0);
    } else {
      psi.apply_mat4(e.dynamic ? ws.dyn2q[static_cast<std::size_t>(e.index)]
                               : plan.table_mat4(e.index),
                     e.q0, e.q1);
    }
  }

  reverse_sweep(plan, ws, psi, qubit, grad.data());
}

void adjoint_gradient_z_batched(const ExecPlan& plan, const double* params,
                                std::size_t stride, std::size_t batch,
                                int qubit, BatchedWorkspace& ws,
                                double* grads) {
  const auto np = static_cast<std::size_t>(plan.num_params());
  if (stride < np) {
    throw std::invalid_argument("adjoint_gradient_z_batched: stride < params");
  }
  if (batch == 0) return;
  AQ_COUNTER_ADD("sim.adjoint.calls", static_cast<std::uint64_t>(batch));
  AQ_COUNTER_ADD("sim.plan.adjoint.batched_calls", 1);

  // One gate-table binding per column. Each column keeps its own
  // workspace so the angle memo sees a consistent sample stream and the
  // weight gates skip their trig rebuild after warm-up, as unbatched.
  if (ws.col_gates.size() < batch) {
    ws.col_gates.reserve(batch);
    while (ws.col_gates.size() < batch) {
      ws.col_gates.push_back(std::make_unique<Workspace>());
    }
  }
  for (std::size_t b = 0; b < batch; ++b) {
    plan.bind_gates(std::span<const double>(params + b * stride, np),
                    *ws.col_gates[b]);
  }

  // Batched forward over the unfused gate table: static entries
  // broadcast one matrix across the block, dynamic entries gather each
  // column's bound matrix — unless every column bound the same angles
  // (weight gates), which takes the broadcast kernel too.
  BatchedStatevector& st = ws.state();
  st.configure(plan.num_qubits(), batch);
  const std::vector<GateEntry>& table = plan.gate_table();
  for (const GateEntry& e : table) {
    bool uniform = !e.dynamic;
    if (e.dynamic) {
      const auto bi = static_cast<std::size_t>(e.bound_index);
      uniform = true;
      for (std::size_t b = 1; b < batch; ++b) {
        if (ws.col_gates[b]->dyn_bound[bi] != ws.col_gates[0]->dyn_bound[bi]) {
          uniform = false;
          break;
        }
      }
    }
    const auto ei = static_cast<std::size_t>(e.index);
    if (e.arity == 1) {
      if (uniform) {
        st.apply_mat2_all(
            e.dynamic ? ws.col_gates[0]->dyn1q[ei] : plan.table_mat2(e.index),
            e.q0);
      } else {
        if (ws.mat2_scratch.size() < batch) ws.mat2_scratch.resize(batch);
        for (std::size_t b = 0; b < batch; ++b) {
          ws.mat2_scratch[b] = ws.col_gates[b]->dyn1q[ei];
        }
        st.apply_mat2_each(ws.mat2_scratch.data(), e.q0);
      }
    } else {
      if (uniform) {
        st.apply_mat4_all(
            e.dynamic ? ws.col_gates[0]->dyn2q[ei] : plan.table_mat4(e.index),
            e.q0, e.q1);
      } else {
        if (ws.mat4_scratch.size() < batch) ws.mat4_scratch.resize(batch);
        for (std::size_t b = 0; b < batch; ++b) {
          ws.mat4_scratch[b] = ws.col_gates[b]->dyn2q[ei];
        }
        st.apply_mat4_each(ws.mat4_scratch.data(), e.q0, e.q1);
      }
    }
  }

  // Reverse half per column: peel the column into that column's
  // unbatched register and run the shared sweep against its matrices.
  const exec::ExecPolicy serial{};
  for (std::size_t b = 0; b < batch; ++b) {
    Workspace& cw = *ws.col_gates[b];
    Statevector& psi = cw.state(plan.num_qubits(), serial);
    psi.load_strided(st.row(0) + b, batch);
    reverse_sweep(plan, cw, psi, qubit, grads + b * np);
  }
}

std::vector<double> adjoint_gradient_z(const ExecPlan& plan,
                                       std::span<const double> params,
                                       int qubit, Workspace& ws) {
  std::vector<double> grad(static_cast<std::size_t>(plan.num_params()), 0.0);
  adjoint_gradient_z(plan, params, qubit, ws, grad);
  return grad;
}

}  // namespace arbiterq::sim
