#include "arbiterq/monitor/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "arbiterq/report/jsonl.hpp"

namespace arbiterq::monitor {

namespace {

SloClass class_at(std::size_t i) { return static_cast<SloClass>(i); }

}  // namespace

std::string slo_class_name(SloClass cls) {
  switch (cls) {
    case SloClass::kLatencyBound:
      return "latency_bound";
    case SloClass::kThroughputBound:
      return "throughput_bound";
    case SloClass::kBestEffort:
      return "best_effort";
  }
  throw std::logic_error("slo_class_name: unknown class");
}

SloPolicy SloPolicy::defaults() {
  SloPolicy p;
  p.objectives[static_cast<std::size_t>(SloClass::kLatencyBound)] = {5'000.0,
                                                                     0.01};
  p.objectives[static_cast<std::size_t>(SloClass::kThroughputBound)] = {
      50'000.0, 0.05};
  p.objectives[static_cast<std::size_t>(SloClass::kBestEffort)] = {0.0, 0.10};
  return p;
}

SloEngine::SloEngine(SloPolicy policy, FleetHealthMonitor* monitor)
    : policy_(policy), monitor_(monitor) {
  if (policy_.window_jobs == 0) {
    throw std::invalid_argument("SloEngine: window_jobs must be > 0");
  }
  for (const SloObjective& o : policy_.objectives) {
    if (o.error_budget <= 0.0 || o.error_budget > 1.0) {
      throw std::invalid_argument("SloEngine: error_budget outside (0, 1]");
    }
  }
}

void SloEngine::observe_job(SloClass cls, double virtual_latency_us,
                            bool ok, int shard, const std::string& tenant) {
  const auto ci = static_cast<std::size_t>(cls);
  if (ci >= kNumSloClasses) {
    throw std::invalid_argument("SloEngine: unknown class");
  }
  const SloObjective& obj = policy_.objectives[ci];
  const bool violation =
      !ok ||
      (obj.latency_target_us > 0.0 && virtual_latency_us > obj.latency_target_us);

  SloBreach breach;
  bool breached = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ClassState& st = state_[ci];
    ++st.jobs;
    ++st.window_jobs;
    if (violation) {
      ++st.violations;
      ++st.window_violations;
    }
    if (shard >= 0) {
      const auto si = static_cast<std::size_t>(shard);
      if (si >= shard_state_.size()) shard_state_.resize(si + 1);
      ++shard_state_[si].jobs;
      if (violation) ++shard_state_[si].violations;
    }
    if (!tenant.empty()) {
      ShardState& ts = tenant_state_[tenant];
      ++ts.jobs;
      if (violation) ++ts.violations;
    }
    if (st.window_jobs >= policy_.window_jobs) {
      const double burn =
          (static_cast<double>(st.window_violations) /
           static_cast<double>(st.window_jobs)) /
          obj.error_budget;
      if (burn > policy_.breach_burn_rate) {
        breach.cls = cls;
        breach.window_index = st.windows_closed;
        breach.window_jobs = st.window_jobs;
        breach.violations = st.window_violations;
        breach.burn_rate = burn;
        breaches_.push_back(breach);
        ++st.breaches;
        breached = true;
      }
      ++st.windows_closed;
      st.window_jobs = 0;
      st.window_violations = 0;
    }
  }

  if (telemetry::telemetry_runtime_enabled()) {
    auto& reg = telemetry::MetricsRegistry::global();
    // Class names vary at runtime, so these bypass the static-caching
    // AQ_* macros and hit the registry directly.
    const std::string name = slo_class_name(cls);
    reg.counter("slo.jobs." + name).add(1);
    if (violation) reg.counter("slo.violations." + name).add(1);
    if (breached) reg.counter("slo.breaches." + name).add(1);
    if (shard >= 0) {
      const std::string sname = "shard" + std::to_string(shard);
      reg.counter("slo.jobs." + sname).add(1);
      if (violation) reg.counter("slo.violations." + sname).add(1);
    }
  }
  if (breached && monitor_ != nullptr) {
    monitor_->observe_slo_breach(slo_class_name(cls), breach.burn_rate);
  }
}

SloReport SloEngine::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloReport rep;
  rep.classes.reserve(kNumSloClasses);
  for (std::size_t i = 0; i < kNumSloClasses; ++i) {
    const ClassState& st = state_[i];
    const SloObjective& obj = policy_.objectives[i];
    SloClassReport c;
    c.cls = class_at(i);
    c.objective = obj;
    c.jobs = st.jobs;
    c.violations = st.violations;
    c.breaches = st.breaches;
    if (st.jobs > 0) {
      const double rate = static_cast<double>(st.violations) /
                          static_cast<double>(st.jobs);
      c.compliance = 1.0 - rate;
      c.overall_burn = rate / obj.error_budget;
    }
    if (st.window_jobs > 0) {
      c.window_burn = (static_cast<double>(st.window_violations) /
                       static_cast<double>(st.window_jobs)) /
                      obj.error_budget;
    }
    rep.classes.push_back(c);
  }
  for (std::size_t s = 0; s < shard_state_.size(); ++s) {
    const ShardState& st = shard_state_[s];
    if (st.jobs == 0) continue;
    SloShardReport sh;
    sh.shard = static_cast<int>(s);
    sh.jobs = st.jobs;
    sh.violations = st.violations;
    sh.compliance = 1.0 - static_cast<double>(st.violations) /
                              static_cast<double>(st.jobs);
    rep.shards.push_back(sh);
  }
  for (const auto& [name, st] : tenant_state_) {
    if (st.jobs == 0) continue;
    SloTenantReport t;
    t.tenant = name;
    t.jobs = st.jobs;
    t.violations = st.violations;
    t.compliance = 1.0 - static_cast<double>(st.violations) /
                             static_cast<double>(st.jobs);
    rep.tenants.push_back(t);
  }
  rep.breaches = breaches_;
  return rep;
}

double SloEngine::burn_rate_from_histogram(
    const telemetry::HistogramSnapshot& histogram,
    const SloObjective& objective) {
  if (objective.latency_target_us <= 0.0 || histogram.count == 0) return 0.0;
  const double target = objective.latency_target_us;
  // Count observations above the target: whole buckets strictly above
  // it, plus a linear share of the bucket the target falls in. Bucket b
  // covers (lower, upper_bounds[b]] with lower = previous bound (or 0).
  double above = 0.0;
  double lower = 0.0;
  for (std::size_t b = 0; b < histogram.bucket_counts.size(); ++b) {
    const double n = static_cast<double>(histogram.bucket_counts[b]);
    const bool overflow = b >= histogram.upper_bounds.size();
    const double upper =
        overflow ? lower : histogram.upper_bounds[b];
    if (overflow) {
      // Overflow bucket: everything in it is above any finite bound
      // <= the highest finite bound; a target beyond that cannot be
      // resolved, so attribute the whole bucket when target <= lower.
      if (target <= lower) above += n;
      break;
    }
    if (target <= lower) {
      above += n;
    } else if (target < upper) {
      above += n * (upper - target) / (upper - lower);
    }
    lower = upper;
  }
  const double fraction = above / static_cast<double>(histogram.count);
  return fraction / objective.error_budget;
}

std::string SloReport::to_table_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf, "%-17s %10s %8s %6s %9s %8s %8s %8s\n",
                "class", "target_us", "budget", "jobs", "violate",
                "comply", "burn", "breach");
  out += buf;
  for (const SloClassReport& c : classes) {
    std::snprintf(buf, sizeof buf,
                  "%-17s %10.0f %7.1f%% %6zu %9zu %7.1f%% %8.2f %8zu\n",
                  slo_class_name(c.cls).c_str(), c.objective.latency_target_us,
                  100.0 * c.objective.error_budget, c.jobs, c.violations,
                  100.0 * c.compliance, c.overall_burn, c.breaches);
    out += buf;
  }
  for (const SloShardReport& s : shards) {
    std::snprintf(buf, sizeof buf,
                  "shard %-3d %6zu jobs %6zu violations %7.1f%% comply\n",
                  s.shard, s.jobs, s.violations, 100.0 * s.compliance);
    out += buf;
  }
  for (const SloTenantReport& t : tenants) {
    std::snprintf(buf, sizeof buf,
                  "tenant %-16s %6zu jobs %6zu violations %7.1f%% comply\n",
                  t.tenant.c_str(), t.jobs, t.violations,
                  100.0 * t.compliance);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "slo: %zu breach window(s) recorded\n",
                breaches.size());
  out += buf;
  return out;
}

std::string SloReport::to_jsonl() const {
  std::string out;
  for (const SloClassReport& c : classes) {
    out += report::JsonLine()
               .field("type", "slo")
               .field("class", slo_class_name(c.cls))
               .field("latency_target_us", c.objective.latency_target_us)
               .field("error_budget", c.objective.error_budget)
               .field("jobs", static_cast<std::uint64_t>(c.jobs))
               .field("violations", static_cast<std::uint64_t>(c.violations))
               .field("compliance", c.compliance)
               .field("overall_burn", c.overall_burn)
               .field("window_burn", c.window_burn)
               .field("breaches", static_cast<std::uint64_t>(c.breaches))
               .finish() +
           "\n";
  }
  for (const SloShardReport& s : shards) {
    out += report::JsonLine()
               .field("type", "slo_shard")
               .field("shard", s.shard)
               .field("jobs", static_cast<std::uint64_t>(s.jobs))
               .field("violations", static_cast<std::uint64_t>(s.violations))
               .field("compliance", s.compliance)
               .finish() +
           "\n";
  }
  for (const SloTenantReport& t : tenants) {
    out += report::JsonLine()
               .field("type", "slo_tenant")
               .field("tenant", t.tenant)
               .field("jobs", static_cast<std::uint64_t>(t.jobs))
               .field("violations", static_cast<std::uint64_t>(t.violations))
               .field("compliance", t.compliance)
               .finish() +
           "\n";
  }
  for (const SloBreach& b : breaches) {
    out += report::JsonLine()
               .field("type", "slo_breach")
               .field("class", slo_class_name(b.cls))
               .field("window", static_cast<std::uint64_t>(b.window_index))
               .field("window_jobs",
                      static_cast<std::uint64_t>(b.window_jobs))
               .field("violations", static_cast<std::uint64_t>(b.violations))
               .field("burn_rate", b.burn_rate)
               .finish() +
           "\n";
  }
  return out;
}

}  // namespace arbiterq::monitor
