#include "arbiterq/monitor/watchdog.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "arbiterq/report/jsonl.hpp"

namespace arbiterq::monitor {

namespace {

bool is_queue_depth(const std::string& name) {
  return name.find("queue.depth") != std::string::npos;
}

bool is_drift(const std::string& name) {
  return name.find(".drift") != std::string::npos;
}

}  // namespace

const char* anomaly_kind_name(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kRateSpike: return "rate_spike";
    case AnomalyKind::kRateCollapse: return "rate_collapse";
    case AnomalyKind::kQueueSaturation: return "queue_saturation";
    case AnomalyKind::kDriftVelocity: return "drift_velocity";
  }
  return "unknown";
}

std::string AnomalyEvent::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, " w=%lld value=%.4g score=%.3g",
                static_cast<long long>(window), value, score);
  return std::string(anomaly_kind_name(kind)) + " " + series + buf;
}

AnomalyWatchdog::AnomalyWatchdog(WatchdogConfig config,
                                 FleetHealthMonitor* monitor)
    : config_(config), monitor_(monitor) {}

std::vector<AnomalyEvent> AnomalyWatchdog::poll(
    const telemetry::TimeSeriesStore& store) {
  std::vector<AnomalyEvent> raised;
  const std::vector<telemetry::SeriesSnapshot> all = store.snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (const telemetry::SeriesSnapshot& s : all) {
    judge(s, state_[s.name], raised);
  }
  return raised;
}

void AnomalyWatchdog::judge(const telemetry::SeriesSnapshot& s,
                            SeriesState& st,
                            std::vector<AnomalyEvent>& out) {
  if (s.windows.size() < 2) return;  // nothing closed yet
  const std::int64_t newest = s.windows.back().index;

  const bool rate_kind = s.kind == telemetry::SeriesKind::kCounterRate ||
                         s.kind == telemetry::SeriesKind::kEvent;
  const bool gauge_kind = s.kind == telemetry::SeriesKind::kGauge;
  const bool depth = gauge_kind && is_queue_depth(s.name);
  const bool drift = gauge_kind && is_drift(s.name);
  if (!rate_kind && !depth && !drift) return;

  // Judge only closed windows (the newest is still filling), each once.
  for (std::size_t i = 0; i + 1 < s.windows.size(); ++i) {
    const telemetry::SeriesWindow& w = s.windows[i];
    if (w.index <= st.last_judged || w.index >= newest) continue;
    st.last_judged = w.index;

    if (rate_kind) {
      const double x = s.rate(i);
      if (st.warmup == 0) {
        st.ewma = x;
        st.ewvar = 0.0;
        st.warmup = 1;
        continue;
      }
      if (st.warmup >= config_.min_windows) {
        const double sigma = std::sqrt(std::max(st.ewvar, 0.0));
        const double floor = config_.z_floor * std::max(st.ewma, 1.0);
        const double z = (x - st.ewma) / std::max(sigma, floor);
        if (std::abs(z) > config_.z_threshold) {
          raise(out,
                z > 0 ? AnomalyKind::kRateSpike : AnomalyKind::kRateCollapse,
                s.name, w.index, x, z);
        }
      }
      // West's EW update: variance first (it uses the pre-update mean).
      const double d = x - st.ewma;
      st.ewvar = (1.0 - config_.ewma_alpha) *
                 (st.ewvar + config_.ewma_alpha * d * d);
      st.ewma += config_.ewma_alpha * d;
      ++st.warmup;
      continue;
    }

    if (depth) {
      const double d = w.max;
      if (st.has_prev) {
        const double g = (d - st.prev) / std::max(st.prev, 1.0);
        if (g > config_.slope_threshold) {
          ++st.rising;
          if (st.rising >= config_.slope_windows) {
            raise(out, AnomalyKind::kQueueSaturation, s.name, w.index, d, g);
            st.rising = 0;
          }
        } else {
          st.rising = 0;
        }
      }
      st.prev = d;
      st.has_prev = true;
      continue;
    }

    // drift velocity
    const double d = w.last;
    if (st.has_prev) {
      const double v = d - st.prev;
      if (v > config_.drift_velocity_threshold) {
        raise(out, AnomalyKind::kDriftVelocity, s.name, w.index, d, v);
      }
    }
    st.prev = d;
    st.has_prev = true;
  }
}

void AnomalyWatchdog::raise(std::vector<AnomalyEvent>& out, AnomalyKind kind,
                            const std::string& series, std::int64_t window,
                            double value, double score) {
  AnomalyEvent e;
  e.kind = kind;
  e.series = series;
  e.window = window;
  e.value = value;
  e.score = score;
  out.push_back(e);
  events_.push_back(e);
  while (events_.size() > config_.max_events) events_.pop_front();
  if (monitor_ != nullptr) {
    monitor_->observe_anomaly(series, anomaly_kind_name(kind), score);
  }
}

std::vector<AnomalyEvent> AnomalyWatchdog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {events_.begin(), events_.end()};
}

std::size_t AnomalyWatchdog::anomaly_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string AnomalyWatchdog::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const AnomalyEvent& e : events_) {
    out += report::JsonLine()
               .field("type", "anomaly")
               .field("kind", anomaly_kind_name(e.kind))
               .field("series", e.series)
               .field("window", static_cast<std::int64_t>(e.window))
               .field("value", e.value)
               .field("score", e.score)
               .finish() +
           "\n";
  }
  return out;
}

}  // namespace arbiterq::monitor
