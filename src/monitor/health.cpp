#include "arbiterq/monitor/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "arbiterq/core/similarity.hpp"
#include "arbiterq/report/jsonl.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::monitor {

std::string status_name(QpuStatus status) {
  switch (status) {
    case QpuStatus::kHealthy:
      return "healthy";
    case QpuStatus::kDrifting:
      return "drifting";
    case QpuStatus::kStalled:
      return "stalled";
    case QpuStatus::kIsolated:
      return "isolated";
  }
  throw std::logic_error("status_name: unknown status");
}

ConvergenceTracker::ConvergenceTracker(HealthConfig config)
    : config_(config) {}

void ConvergenceTracker::observe(double loss, double grad_norm) {
  const double a = config_.ema_alpha;
  if (epochs_ == 0) {
    first_loss_ = loss;
    loss_ema_ = loss;
    grad_ema_ = grad_norm;
  } else {
    const double prev_loss_ema = loss_ema_;
    const double prev_grad_ema = grad_ema_;
    loss_ema_ = a * loss + (1.0 - a) * loss_ema_;
    grad_ema_ = a * grad_norm + (1.0 - a) * grad_ema_;
    slope_ema_ = a * (loss_ema_ - prev_loss_ema) + (1.0 - a) * slope_ema_;
    grad_slope_ema_ =
        a * (grad_ema_ - prev_grad_ema) + (1.0 - a) * grad_slope_ema_;
    const double scale = std::max(std::abs(loss_ema_), 1e-12);
    if (std::abs(slope_ema_) < config_.flat_slope_tol * scale) {
      ++plateau_;
    } else {
      plateau_ = 0;
    }
  }
  last_loss_ = loss;
  ++epochs_;
}

double ConvergenceTracker::relative_improvement() const noexcept {
  if (epochs_ == 0) return 0.0;
  return (first_loss_ - loss_ema_) / std::max(std::abs(first_loss_), 1e-12);
}

bool ConvergenceTracker::stalled() const noexcept {
  return epochs_ >= config_.min_epochs &&
         plateau_ >= config_.stall_epochs &&
         relative_improvement() < config_.min_improvement;
}

FleetHealthMonitor::FleetHealthMonitor(std::size_t fleet_size,
                                       HealthConfig config)
    : config_(config),
      trackers_(fleet_size, ConvergenceTracker(config)),
      drift_(fleet_size, 0.0),
      online_(fleet_size, true),
      have_online_(fleet_size, false),
      churn_flips_(fleet_size, 0) {
  if (fleet_size == 0) {
    throw std::invalid_argument("FleetHealthMonitor: empty fleet");
  }
}

void FleetHealthMonitor::on_epoch(const telemetry::EpochQpuRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (record.qpu < 0 ||
      static_cast<std::size_t>(record.qpu) >= trackers_.size()) {
    return;
  }
  const auto i = static_cast<std::size_t>(record.qpu);
  trackers_[i].observe(record.loss, record.grad_norm);
  if (have_online_[i] && online_[i] != record.online) ++churn_flips_[i];
  online_[i] = record.online;
  have_online_[i] = true;
}

void FleetHealthMonitor::observe_membership(int qpu, bool online) {
  std::lock_guard<std::mutex> lock(mu_);
  if (qpu < 0 || static_cast<std::size_t>(qpu) >= online_.size()) return;
  const auto i = static_cast<std::size_t>(qpu);
  if (have_online_[i] && online_[i] != online) ++churn_flips_[i];
  online_[i] = online;
  have_online_[i] = true;
}

void FleetHealthMonitor::set_shard_map(std::vector<int> shard_by_qpu) {
  std::lock_guard<std::mutex> lock(mu_);
  shard_map_ = std::move(shard_by_qpu);
}

void FleetHealthMonitor::observe_slo_breach(const std::string& slo_class,
                                            double burn_rate) {
  (void)slo_class;  // per-class detail lives in the SloReport itself
  std::lock_guard<std::mutex> lock(mu_);
  ++slo_breaches_;
  slo_worst_burn_ = std::max(slo_worst_burn_, burn_rate);
}

void FleetHealthMonitor::observe_anomaly(const std::string& series,
                                         const std::string& kind,
                                         double score) {
  std::lock_guard<std::mutex> lock(mu_);
  ++anomalies_;
  if (std::abs(score) >= std::abs(worst_anomaly_score_)) {
    worst_anomaly_score_ = score;
    worst_anomaly_ = series + " " + kind;
  }
}

void FleetHealthMonitor::on_assignment(
    const telemetry::AssignmentRecord& record) {
  (void)record;
  std::lock_guard<std::mutex> lock(mu_);
  ++assignments_;
}

void FleetHealthMonitor::set_baseline(
    const std::vector<core::BehavioralVector>& vectors) {
  std::lock_guard<std::mutex> lock(mu_);
  baseline_ = vectors;
  std::fill(drift_.begin(), drift_.end(), 0.0);
}

void FleetHealthMonitor::observe_calibration(
    const std::vector<core::BehavioralVector>& vectors) {
  std::lock_guard<std::mutex> lock(mu_);
  if (baseline_.empty()) {
    baseline_ = vectors;
    return;
  }
  const std::size_t n =
      std::min({vectors.size(), baseline_.size(), drift_.size()});
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    drift_[i] = core::behavioral_distance(baseline_[i], vectors[i]);
    worst = std::max(worst, drift_[i]);
  }
  // Publish the distances as gauges so the time-series collector (and
  // the watchdog's drift-velocity detector) can follow their trajectory.
  if (telemetry::telemetry_runtime_enabled()) {
    auto& reg = telemetry::MetricsRegistry::global();
    for (std::size_t i = 0; i < n; ++i) {
      // Per-QPU names vary at runtime: registry lookup, not AQ_GAUGE_SET.
      reg.gauge("monitor.qpu.drift.q" + std::to_string(i)).set(drift_[i]);
    }
    reg.gauge("monitor.fleet.drift.max").set(worst);
  }
}

void FleetHealthMonitor::observe_similarity(
    const core::SimilarityGraph& graph, double threshold) {
  SimilarityView view = introspect(graph, threshold);
  std::lock_guard<std::mutex> lock(mu_);
  if (have_similarity_) {
    churn_ = edge_churn(similarity_.edges, view.edges);
  }
  similarity_ = std::move(view);
  have_similarity_ = true;
}

std::size_t FleetHealthMonitor::assignments_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assignments_;
}

FleetHealthReport FleetHealthMonitor::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetHealthReport rep;
  rep.churn = churn_;
  rep.slo_breaches = slo_breaches_;
  rep.slo_worst_burn = slo_worst_burn_;
  rep.anomalies = anomalies_;
  rep.worst_anomaly = worst_anomaly_;
  rep.worst_anomaly_score = worst_anomaly_score_;
  rep.qpus.reserve(trackers_.size());
  for (std::size_t i = 0; i < trackers_.size(); ++i) {
    const ConvergenceTracker& t = trackers_[i];
    QpuHealth h;
    h.qpu = static_cast<int>(i);
    h.epochs = t.epochs();
    h.loss = t.last_loss();
    h.loss_ema = t.loss_ema();
    h.loss_slope = t.loss_slope();
    h.improvement = t.relative_improvement();
    h.grad_norm_ema = t.grad_norm_ema();
    h.grad_norm_slope = t.grad_norm_slope();
    h.drift = drift_[i];
    h.online = online_[i];
    h.churn_flips = churn_flips_[i];
    if (i < shard_map_.size()) h.shard = shard_map_[i];
    const bool in_graph = have_similarity_ && i < similarity_.degree.size();
    if (in_graph) {
      h.degree = similarity_.degree[i];
      h.group = similarity_.group[i];
      h.group_size = similarity_.group_size[i];
    }
    if (t.stalled()) {
      h.status = QpuStatus::kStalled;
    } else if (h.drift > config_.drift_threshold) {
      h.status = QpuStatus::kDrifting;
    } else if (in_graph && similarity_.n > 1 && h.degree == 0) {
      h.status = QpuStatus::kIsolated;
    }
    switch (h.status) {
      case QpuStatus::kHealthy: ++rep.healthy; break;
      case QpuStatus::kDrifting: ++rep.drifting; break;
      case QpuStatus::kStalled: ++rep.stalled; break;
      case QpuStatus::kIsolated: ++rep.isolated; break;
    }
    rep.qpus.push_back(h);
  }
  return rep;
}

std::string FleetHealthReport::to_table_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%4s %5s %-9s %6s %10s %10s %11s %8s %10s %6s %6s %6s\n",
                "qpu", "shard", "status", "epochs", "loss", "loss_ema",
                "slope", "improve", "drift", "deg", "group", "flips");
  out += buf;
  for (const QpuHealth& h : qpus) {
    std::snprintf(buf, sizeof buf,
                  "%4d %5d %-9s %6d %10.4f %10.4f %11.2e %7.1f%% %10.2e "
                  "%6d %6d %6d\n",
                  h.qpu, h.shard, status_name(h.status).c_str(), h.epochs,
                  h.loss, h.loss_ema, h.loss_slope, 100.0 * h.improvement,
                  h.drift, h.degree, h.group, h.churn_flips);
    out += buf;
  }
  std::snprintf(buf, sizeof buf,
                "fleet: %zu healthy, %zu drifting, %zu stalled, "
                "%zu isolated | edge churn +%zu -%zu (kept %zu)"
                " | slo breaches %zu (worst burn %.2f)"
                " | anomalies %zu%s%s\n",
                healthy, drifting, stalled, isolated, churn.added.size(),
                churn.removed.size(), churn.kept, slo_breaches,
                slo_worst_burn, anomalies,
                worst_anomaly.empty() ? "" : " worst ",
                worst_anomaly.c_str());
  out += buf;
  return out;
}

std::string FleetHealthReport::to_jsonl() const {
  std::string out;
  for (const QpuHealth& h : qpus) {
    out += report::JsonLine()
               .field("type", "health")
               .field("qpu", h.qpu)
               .field("status", status_name(h.status))
               .field("epochs", h.epochs)
               .field("loss", h.loss)
               .field("loss_ema", h.loss_ema)
               .field("loss_slope", h.loss_slope)
               .field("improvement", h.improvement)
               .field("grad_norm_ema", h.grad_norm_ema)
               .field("grad_norm_slope", h.grad_norm_slope)
               .field("drift", h.drift)
               .field("degree", h.degree)
               .field("group", h.group)
               .field("group_size", h.group_size)
               .field("online", h.online)
               .field("churn_flips", h.churn_flips)
               .field("shard", h.shard)
               .finish() +
           "\n";
  }
  out += report::JsonLine()
             .field("type", "health_summary")
             .field("healthy", static_cast<std::uint64_t>(healthy))
             .field("drifting", static_cast<std::uint64_t>(drifting))
             .field("stalled", static_cast<std::uint64_t>(stalled))
             .field("isolated", static_cast<std::uint64_t>(isolated))
             .field("edges_added",
                    static_cast<std::uint64_t>(churn.added.size()))
             .field("edges_removed",
                    static_cast<std::uint64_t>(churn.removed.size()))
             .field("edges_kept", static_cast<std::uint64_t>(churn.kept))
             .field("slo_breaches", static_cast<std::uint64_t>(slo_breaches))
             .field("slo_worst_burn", slo_worst_burn)
             .field("anomalies", static_cast<std::uint64_t>(anomalies))
             .field("worst_anomaly", worst_anomaly)
             .field("worst_anomaly_score", worst_anomaly_score)
             .finish() +
         "\n";
  return out;
}

}  // namespace arbiterq::monitor
