#pragma once
// Similarity-graph introspection for fleet health: which QPUs have
// sharing partners, which are isolated, and how the edge set churns
// when behavioral vectors are rebuilt after a recalibration. The paper's
// premise (§III-A/B) is that these neighborhoods drift over time — this
// is the lens that makes the drift visible.

#include <cstddef>
#include <utility>
#include <vector>

#include "arbiterq/core/similarity.hpp"

namespace arbiterq::monitor {

/// Structure of one thresholded similarity graph.
struct SimilarityView {
  std::size_t n = 0;
  double threshold = 0.0;
  /// Undirected edges (i < j) with dist(i,j) <= threshold.
  std::vector<std::pair<int, int>> edges;
  std::vector<int> degree;      ///< neighbors under the threshold
  std::vector<int> group;       ///< connected-component index
  std::vector<int> group_size;  ///< members of that component
  std::vector<int> isolated;    ///< nodes with degree 0
};

SimilarityView introspect(const core::SimilarityGraph& graph,
                          double threshold);

/// Edge-set difference between two thresholded graphs (before → after a
/// recalibration): the neighborhood-churn signal.
struct EdgeChurn {
  std::vector<std::pair<int, int>> added;
  std::vector<std::pair<int, int>> removed;
  std::size_t kept = 0;

  std::size_t total_changed() const noexcept {
    return added.size() + removed.size();
  }
};

/// Both edge lists must be (i < j) pairs; order need not be sorted.
EdgeChurn edge_churn(const std::vector<std::pair<int, int>>& before,
                     const std::vector<std::pair<int, int>>& after);

}  // namespace arbiterq::monitor
