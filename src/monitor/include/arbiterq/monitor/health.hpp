#pragma once
// Fleet health monitoring (aq_monitor): per-QPU convergence trackers,
// behavioral-vector drift since the last calibration, and similarity-
// neighborhood structure, rolled up into a FleetHealthReport with one
// status per QPU:
//
//   stalled  — the loss curve is flat (EMA slope inside the tolerance
//              band for `stall_epochs` straight epochs) without having
//              meaningfully improved since training started. A curve
//              that *converged* is also flat but improved first, so it
//              stays healthy;
//   drifting — Eq. 1 distance between the QPU's current behavioral
//              vector and its calibration baseline exceeds
//              drift_threshold (the device no longer behaves like the
//              one the model was personalized for);
//   isolated — no similarity neighbor under the grouping threshold in a
//              multi-QPU fleet (the node trains alone, no variance
//              reduction);
//   healthy  — none of the above.
//
// Status precedence when several apply: stalled > drifting > isolated
// (training being stuck outranks everything; a drifted device explains
// more than an isolated one).
//
// FleetHealthMonitor is a telemetry::TrainingTelemetry sink, so it plugs
// into DistributedTrainer either through the train() telemetry argument
// or the TrainConfig::monitor hook — like every sink it is explicit and
// fully functional in ARBITERQ_TELEMETRY=OFF builds (only the ambient
// macro instrumentation compiles away there).

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/monitor/introspect.hpp"
#include "arbiterq/telemetry/sink.hpp"

namespace arbiterq::monitor {

enum class QpuStatus { kHealthy, kDrifting, kStalled, kIsolated };

std::string status_name(QpuStatus status);

struct HealthConfig {
  /// EMA smoothing factor for the loss/grad-norm series (weight of the
  /// newest observation).
  double ema_alpha = 0.3;
  /// An epoch counts toward a plateau when |EMA slope| is below this
  /// fraction of max(|loss EMA|, 1e-12).
  double flat_slope_tol = 5e-3;
  /// Consecutive plateau epochs before a curve counts as flat.
  int stall_epochs = 5;
  /// Never judge a QPU stalled before this many observations.
  int min_epochs = 8;
  /// A flat curve is only *stalled* if its relative improvement since
  /// the first epoch, (first - ema) / max(|first|, eps), is below this.
  double min_improvement = 0.05;
  /// Eq. 1 behavioral distance from the calibration baseline beyond
  /// which a QPU counts as drifting. The default sits above numerical
  /// noise but below the trainer's default grouping threshold (1.2e-3):
  /// a device can drift out of its personality before it leaves its
  /// group.
  double drift_threshold = 2e-4;
};

/// Streaming per-QPU convergence state: loss EMA, EMA slope, gradient-
/// norm EMA and trend, plateau run length, improvement since epoch 0.
class ConvergenceTracker {
 public:
  explicit ConvergenceTracker(HealthConfig config = {});

  void observe(double loss, double grad_norm);

  int epochs() const noexcept { return epochs_; }
  double last_loss() const noexcept { return last_loss_; }
  double loss_ema() const noexcept { return loss_ema_; }
  /// Smoothed per-epoch change of the loss EMA (negative = improving).
  double loss_slope() const noexcept { return slope_ema_; }
  double grad_norm_ema() const noexcept { return grad_ema_; }
  /// Smoothed per-epoch change of the gradient-norm EMA.
  double grad_norm_slope() const noexcept { return grad_slope_ema_; }
  /// (first_loss - loss_ema) / max(|first_loss|, 1e-12).
  double relative_improvement() const noexcept;
  int plateau_length() const noexcept { return plateau_; }
  bool stalled() const noexcept;

 private:
  HealthConfig config_;
  int epochs_ = 0;
  double first_loss_ = 0.0;
  double last_loss_ = 0.0;
  double loss_ema_ = 0.0;
  double slope_ema_ = 0.0;
  double grad_ema_ = 0.0;
  double grad_slope_ema_ = 0.0;
  int plateau_ = 0;
};

struct QpuHealth {
  int qpu = 0;
  QpuStatus status = QpuStatus::kHealthy;
  int epochs = 0;
  double loss = 0.0;
  double loss_ema = 0.0;
  double loss_slope = 0.0;
  double improvement = 0.0;
  double grad_norm_ema = 0.0;
  double grad_norm_slope = 0.0;
  double drift = 0.0;   ///< Eq. 1 distance from the calibration baseline
  int degree = 0;       ///< similarity neighbors under the threshold
  int group = -1;
  int group_size = 1;
  bool online = true;   ///< last observed churn state
  int churn_flips = 0;  ///< online<->offline transitions observed
  int shard = -1;       ///< serving shard owning this QPU (-1 = unsharded)
};

struct FleetHealthReport {
  std::vector<QpuHealth> qpus;
  std::size_t healthy = 0;
  std::size_t drifting = 0;
  std::size_t stalled = 0;
  std::size_t isolated = 0;
  /// Edge churn between the two most recent observe_similarity calls
  /// (empty until the graph has been observed twice).
  EdgeChurn churn;
  /// SLO breach windows forwarded by an attached SloEngine.
  std::size_t slo_breaches = 0;
  /// Highest burn rate among forwarded breaches (0 when none).
  double slo_worst_burn = 0.0;
  /// Time-series anomalies forwarded by an AnomalyWatchdog.
  std::size_t anomalies = 0;
  /// "series kind" of the highest-scored anomaly (empty when none).
  std::string worst_anomaly;
  double worst_anomaly_score = 0.0;

  /// Fixed-width human-readable table plus a one-line summary.
  std::string to_table_string() const;
  /// One {"type":"health",...} JSONL line per QPU followed by one
  /// {"type":"health_summary",...} line (report::JsonLine escaping).
  std::string to_jsonl() const;
};

/// Aggregates the three health signals. Thread-safe: on_epoch may be
/// driven from a training loop while report() is read elsewhere.
class FleetHealthMonitor final : public telemetry::TrainingTelemetry {
 public:
  explicit FleetHealthMonitor(std::size_t fleet_size,
                              HealthConfig config = {});

  /// TrainingTelemetry: feeds the QPU's ConvergenceTracker and the
  /// online/churn tally. Records for QPUs beyond fleet_size are ignored.
  void on_epoch(const telemetry::EpochQpuRecord& record) override;
  /// Inference assignments carry no health signal (yet); counted only.
  void on_assignment(const telemetry::AssignmentRecord& record) override;
  /// Membership-change event outside a training epoch (the serving
  /// runtime's dropout detection): updates the online/churn tally only,
  /// leaving the convergence tracker untouched. Out-of-range QPUs are
  /// ignored, like on_epoch.
  void observe_membership(int qpu, bool online);
  /// SLO breach forwarded by an SloEngine: tallies the breach and keeps
  /// the worst burn rate seen, surfaced in the report summary.
  void observe_slo_breach(const std::string& slo_class, double burn_rate);
  /// Windowed time-series anomaly forwarded by an AnomalyWatchdog
  /// (watchdog.hpp): tallied next to SLO breaches; the highest |score|
  /// seen is kept as "series kind" in the report summary.
  void observe_anomaly(const std::string& series, const std::string& kind,
                       double score);
  /// QPU -> serving-shard ownership (set by a sharded ServingRuntime);
  /// surfaces as the `shard` column of every health row. Entries beyond
  /// fleet_size are ignored; unmapped QPUs report -1.
  void set_shard_map(std::vector<int> shard_by_qpu);

  /// Calibration baseline the drift distances are measured against.
  void set_baseline(const std::vector<core::BehavioralVector>& vectors);
  /// Recompute per-QPU drift as behavioral_distance(baseline, current);
  /// call after rebuilding behavioral vectors (e.g. post-recalibration).
  void observe_calibration(
      const std::vector<core::BehavioralVector>& vectors);
  /// Record the similarity structure; the second and later calls also
  /// compute edge churn against the previous one.
  void observe_similarity(const core::SimilarityGraph& graph,
                          double threshold);

  std::size_t fleet_size() const noexcept { return trackers_.size(); }
  std::size_t assignments_seen() const;
  FleetHealthReport report() const;

 private:
  mutable std::mutex mu_;
  HealthConfig config_;
  std::vector<ConvergenceTracker> trackers_;
  std::vector<double> drift_;
  std::vector<bool> online_;
  std::vector<bool> have_online_;
  std::vector<int> churn_flips_;
  std::vector<int> shard_map_;  ///< by QPU; empty until set_shard_map
  std::vector<core::BehavioralVector> baseline_;
  SimilarityView similarity_;
  bool have_similarity_ = false;
  EdgeChurn churn_;
  std::size_t assignments_ = 0;
  std::size_t slo_breaches_ = 0;
  double slo_worst_burn_ = 0.0;
  std::size_t anomalies_ = 0;
  std::string worst_anomaly_;
  double worst_anomaly_score_ = 0.0;
};

}  // namespace arbiterq::monitor
