#pragma once
// SLO engine for the fleet serving path: per-class latency objectives,
// windowed burn-rate computation, and breach events.
//
// Jobs are served under one of three service classes (the ROADMAP's
// multi-tenant QoS taxonomy):
//
//   latency-bound    — tight virtual-latency target, small error budget
//                      (interactive inference);
//   throughput-bound — loose latency target, larger budget (bulk
//                      scoring: finishing matters, tail latency less);
//   best-effort      — success-only objective, widest budget.
//
// A job *violates* its objective when it did not complete ok, or when
// its modeled (virtual) latency exceeds the class target. The engine
// rolls observations into fixed-size windows per class and computes the
// *burn rate* each time a window closes:
//
//   burn = (violations / window_jobs) / error_budget
//
// burn == 1 means the class is consuming its error budget exactly as
// fast as allowed; burn > breach_burn_rate closes the window as a
// breach: an SloBreach event is appended to the report, counters fire,
// and the FleetHealthMonitor (when attached) tallies it — this is the
// substrate the ROADMAP's pluggable arbiters will be judged against.
//
// Latencies are *modeled* hardware time, so every number the engine
// produces from a seeded serving run is deterministic.
//
// burn_rate_from_histogram() computes the same quantity over an
// exported `serve.job.*` HistogramSnapshot (cumulative-bucket
// interpolation at the target bound) so a scrape-side consumer can
// derive burn from /metrics without per-job hooks.

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "arbiterq/monitor/health.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::monitor {

enum class SloClass { kLatencyBound = 0, kThroughputBound = 1, kBestEffort = 2 };
inline constexpr std::size_t kNumSloClasses = 3;

/// Stable snake_case name ("latency_bound", ...), used as a metric-name
/// suffix and in reports.
std::string slo_class_name(SloClass cls);

struct SloObjective {
  /// Virtual-latency target (us); a completed job complies when its
  /// virtual latency is <= this. <= 0 disables the latency term — the
  /// objective is success-only.
  double latency_target_us = 0.0;
  /// Allowed fraction of violating jobs (the error budget), in (0, 1].
  double error_budget = 0.05;
};

struct SloPolicy {
  std::array<SloObjective, kNumSloClasses> objectives;  ///< by SloClass
  /// Observations per burn-rate window (per class).
  std::size_t window_jobs = 64;
  /// A closed window whose burn exceeds this is a breach.
  double breach_burn_rate = 1.0;

  /// latency-bound 5ms @ 1%, throughput-bound 50ms @ 5%, best-effort
  /// success-only @ 10%.
  static SloPolicy defaults();
};

/// One breached window.
struct SloBreach {
  SloClass cls = SloClass::kBestEffort;
  std::size_t window_index = 0;  ///< per-class, 0-based
  std::size_t window_jobs = 0;
  std::size_t violations = 0;
  double burn_rate = 0.0;
};

struct SloClassReport {
  SloClass cls = SloClass::kBestEffort;
  SloObjective objective;
  std::size_t jobs = 0;
  std::size_t violations = 0;
  double compliance = 1.0;    ///< 1 - violations/jobs (1.0 when idle)
  double overall_burn = 0.0;  ///< lifetime violation rate / budget
  double window_burn = 0.0;   ///< current (possibly partial) window
  std::size_t breaches = 0;
};

/// Per-serving-shard roll-up across all classes (only shards that
/// observed at least one job appear).
struct SloShardReport {
  int shard = -1;
  std::size_t jobs = 0;
  std::size_t violations = 0;
  double compliance = 1.0;  ///< 1 - violations/jobs
};

/// Per-tenant roll-up across all classes (only tenants that observed at
/// least one job appear; jobs observed with an empty tenant stay
/// unattributed).
struct SloTenantReport {
  std::string tenant;
  std::size_t jobs = 0;
  std::size_t violations = 0;
  double compliance = 1.0;  ///< 1 - violations/jobs
};

struct SloReport {
  std::vector<SloClassReport> classes;   ///< all classes, fixed order
  std::vector<SloShardReport> shards;    ///< ascending shard id
  std::vector<SloTenantReport> tenants;  ///< ascending tenant name
  std::vector<SloBreach> breaches;       ///< in detection order

  std::string to_table_string() const;
  /// One {"type":"slo",...} line per class then one {"type":
  /// "slo_breach",...} line per breach.
  std::string to_jsonl() const;
};

/// Thread-safe: observe_job may be driven from serving workers while
/// report() is read from a scrape handler.
class SloEngine {
 public:
  /// `monitor` is optional, non-owning, and must outlive the engine;
  /// each breach is forwarded to it via observe_slo_breach.
  explicit SloEngine(SloPolicy policy = SloPolicy::defaults(),
                     FleetHealthMonitor* monitor = nullptr);

  const SloPolicy& policy() const noexcept { return policy_; }

  /// Record one finished job. `ok` is final-disposition success;
  /// `virtual_latency_us` is the job's modeled latency (ignored for the
  /// compliance test when the class target is disabled). `shard`, when
  /// >= 0, attributes the observation to a serving shard so the report
  /// (and per-shard counters) can localize which slice of the fleet is
  /// burning budget; -1 keeps the observation unsharded. `tenant`, when
  /// non-empty, additionally attributes the observation to a serving
  /// tenant so the multi-tenant QoS report can show who is burning
  /// whose budget.
  void observe_job(SloClass cls, double virtual_latency_us, bool ok,
                   int shard = -1, const std::string& tenant = {});

  SloReport report() const;

  /// Burn rate implied by an exported latency histogram: the fraction
  /// of observations above the objective's target (cumulative buckets,
  /// linear interpolation inside the straddling bucket) divided by the
  /// error budget. Returns 0 for an empty histogram; a disabled
  /// latency target always yields 0 (the histogram carries no success
  /// signal).
  static double burn_rate_from_histogram(
      const telemetry::HistogramSnapshot& histogram,
      const SloObjective& objective);

 private:
  struct ClassState {
    std::size_t jobs = 0;
    std::size_t violations = 0;
    std::size_t window_jobs = 0;
    std::size_t window_violations = 0;
    std::size_t windows_closed = 0;
    std::size_t breaches = 0;
  };

  struct ShardState {
    std::size_t jobs = 0;
    std::size_t violations = 0;
  };

  SloPolicy policy_;
  FleetHealthMonitor* monitor_;
  mutable std::mutex mu_;
  std::array<ClassState, kNumSloClasses> state_;
  /// Indexed by shard id (grown on demand; shard counts are small).
  std::vector<ShardState> shard_state_;
  /// Keyed by tenant name; ordered so report() rows are stable.
  std::map<std::string, ShardState> tenant_state_;
  std::vector<SloBreach> breaches_;
};

}  // namespace arbiterq::monitor
