#pragma once
// Windowed anomaly watchdogs over a telemetry::TimeSeriesStore — the
// detector layer that turns the store's history into events a human (or
// ROADMAP item 3's recalibration trigger) can act on. Three detectors,
// each judging only *closed* windows (the newest window is still
// filling) and each window at most once:
//
//   rate z-score     counter/event series. Maintains an exponentially
//                    weighted mean mu and variance s2 of the per-window
//                    rate; a window with |x - mu| / max(sqrt(s2),
//                    z_floor·max(mu,1)) > z_threshold after `min_windows`
//                    warm-up windows flags kRateSpike / kRateCollapse.
//
//   saturation slope queue-depth gauges (name contains "queue.depth").
//                    Relative per-window growth g_w = (d_w − d_{w−1}) /
//                    max(d_{w−1}, 1) on the window max; flags
//                    kQueueSaturation after `slope_windows` consecutive
//                    windows with g_w > slope_threshold (a ramp that
//                    doubles the depth every window is flagged on its
//                    2nd window with the defaults).
//
//   drift velocity   behavioral-distance gauges (name contains
//                    ".drift"). v_w = d_w − d_{w−1} per window; flags
//                    kDriftVelocity when v_w > drift_velocity_threshold
//                    (drift *accelerating*, as opposed to the health
//                    monitor's absolute drift_threshold).
//
// Events are appended to the watchdog's log and, when a
// FleetHealthMonitor is attached, forwarded via observe_anomaly() so
// they surface next to SLO breaches in the fleet health summary.
// poll() is deterministic: judging is a pure function of the store's
// window contents, so a virtual-clock store yields identical events
// across runs.

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "arbiterq/monitor/health.hpp"
#include "arbiterq/telemetry/timeseries.hpp"

namespace arbiterq::monitor {

enum class AnomalyKind : std::uint8_t {
  kRateSpike,
  kRateCollapse,
  kQueueSaturation,
  kDriftVelocity,
};

const char* anomaly_kind_name(AnomalyKind kind) noexcept;

struct WatchdogConfig {
  /// EWMA weight of the newest closed window (mean and variance alike).
  double ewma_alpha = 0.3;
  /// z threshold for rate spikes/collapses.
  double z_threshold = 4.0;
  /// Sigma floor as a fraction of max(EWMA mean, 1): keeps a perfectly
  /// steady series (sigma -> 0) from flagging on rounding jitter.
  double z_floor = 0.05;
  /// Closed windows consumed before rate judging starts.
  int min_windows = 4;
  /// Relative per-window depth growth counting toward saturation.
  double slope_threshold = 0.5;
  /// Consecutive growing windows before kQueueSaturation fires.
  int slope_windows = 2;
  /// Per-window behavioral-distance increase flagged as accelerating.
  double drift_velocity_threshold = 1e-4;
  /// Cap on retained events (oldest dropped first).
  std::size_t max_events = 1024;
};

struct AnomalyEvent {
  AnomalyKind kind = AnomalyKind::kRateSpike;
  std::string series;
  std::int64_t window = 0;  ///< window index the anomaly was judged at
  double value = 0.0;       ///< the offending window's rate/depth/drift
  double score = 0.0;       ///< z, relative slope, or velocity

  std::string to_string() const;
};

class AnomalyWatchdog {
 public:
  explicit AnomalyWatchdog(WatchdogConfig config = {},
                           FleetHealthMonitor* monitor = nullptr);

  /// Scan every series for newly closed windows and judge them; returns
  /// the events raised by this call (also appended to events() and
  /// forwarded to the attached monitor). Thread-safe; deterministic for
  /// a given store state.
  std::vector<AnomalyEvent> poll(const telemetry::TimeSeriesStore& store);

  std::vector<AnomalyEvent> events() const;
  std::size_t anomaly_count() const;
  /// One {"type":"anomaly",...} JSONL line per event.
  std::string to_jsonl() const;

 private:
  struct SeriesState {
    std::int64_t last_judged = std::numeric_limits<std::int64_t>::min();
    // Rate detector.
    double ewma = 0.0;
    double ewvar = 0.0;
    int warmup = 0;
    // Slope / velocity detectors.
    double prev = 0.0;
    bool has_prev = false;
    int rising = 0;
  };

  void judge(const telemetry::SeriesSnapshot& s, SeriesState& st,
             std::vector<AnomalyEvent>& out);
  void raise(std::vector<AnomalyEvent>& out, AnomalyKind kind,
             const std::string& series, std::int64_t window, double value,
             double score);

  WatchdogConfig config_;
  FleetHealthMonitor* monitor_;
  mutable std::mutex mu_;
  std::map<std::string, SeriesState> state_;
  std::deque<AnomalyEvent> events_;
};

}  // namespace arbiterq::monitor
