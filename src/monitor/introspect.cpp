#include "arbiterq/monitor/introspect.hpp"

#include <algorithm>
#include <set>

namespace arbiterq::monitor {

SimilarityView introspect(const core::SimilarityGraph& graph,
                          double threshold) {
  SimilarityView view;
  view.n = graph.size();
  view.threshold = threshold;
  view.degree.assign(view.n, 0);
  view.group.assign(view.n, -1);
  view.group_size.assign(view.n, 1);

  for (std::size_t i = 0; i < view.n; ++i) {
    for (std::size_t j = i + 1; j < view.n; ++j) {
      if (graph.distance(i, j) <= threshold) {
        view.edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
        ++view.degree[i];
        ++view.degree[j];
      }
    }
  }
  for (std::size_t i = 0; i < view.n; ++i) {
    if (view.degree[i] == 0) view.isolated.push_back(static_cast<int>(i));
  }

  const auto groups = graph.groups(threshold);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int member : groups[g]) {
      view.group[static_cast<std::size_t>(member)] = static_cast<int>(g);
      view.group_size[static_cast<std::size_t>(member)] =
          static_cast<int>(groups[g].size());
    }
  }
  return view;
}

EdgeChurn edge_churn(const std::vector<std::pair<int, int>>& before,
                     const std::vector<std::pair<int, int>>& after) {
  const std::set<std::pair<int, int>> old_set(before.begin(), before.end());
  const std::set<std::pair<int, int>> new_set(after.begin(), after.end());
  EdgeChurn churn;
  for (const auto& e : new_set) {
    if (old_set.count(e)) ++churn.kept;
    else churn.added.push_back(e);
  }
  for (const auto& e : old_set) {
    if (!new_set.count(e)) churn.removed.push_back(e);
  }
  return churn;
}

}  // namespace arbiterq::monitor
