#pragma once
// A quantum circuit: an ordered gate list over a fixed qubit register,
// parameterized by an external vector of `num_params` values (QNN weights
// and/or encoded features). Builder methods append gates; free functions
// in unitary.hpp evaluate semantics.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "arbiterq/circuit/gate.hpp"

namespace arbiterq::circuit {

class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, int num_params = 0);

  int num_qubits() const noexcept { return num_qubits_; }
  int num_params() const noexcept { return num_params_; }
  std::size_t size() const noexcept { return gates_.size(); }
  bool empty() const noexcept { return gates_.empty(); }

  const std::vector<Gate>& gates() const noexcept { return gates_; }
  const Gate& gate(std::size_t i) const { return gates_.at(i); }

  /// Append a fully-formed gate (validates qubit indices and arity).
  Circuit& add(Gate g);

  // -- 1-qubit builders ------------------------------------------------
  Circuit& x(int q) { return add_simple(GateKind::kX, q); }
  Circuit& y(int q) { return add_simple(GateKind::kY, q); }
  Circuit& z(int q) { return add_simple(GateKind::kZ, q); }
  Circuit& h(int q) { return add_simple(GateKind::kH, q); }
  Circuit& s(int q) { return add_simple(GateKind::kS, q); }
  Circuit& sdg(int q) { return add_simple(GateKind::kSdg, q); }
  Circuit& sx(int q) { return add_simple(GateKind::kSX, q); }
  Circuit& rx(int q, ParamExpr theta);
  Circuit& ry(int q, ParamExpr theta);
  Circuit& rz(int q, ParamExpr theta);
  Circuit& u3(int q, ParamExpr theta, ParamExpr phi, ParamExpr lambda);

  // -- 2-qubit builders ------------------------------------------------
  Circuit& cx(int control, int target);
  Circuit& cz(int control, int target);
  Circuit& crx(int control, int target, ParamExpr theta);
  Circuit& cry(int control, int target, ParamExpr theta);
  Circuit& crz(int control, int target, ParamExpr theta);
  Circuit& swap(int a, int b);

  /// Append every gate of `other` (same qubit count required); parameter
  /// indices of `other` are shifted by `param_offset`.
  Circuit& append(const Circuit& other, int param_offset = 0);

  /// Number of two-qubit gates (routing pressure metric).
  std::size_t two_qubit_gate_count() const noexcept;
  /// Number of routing SWAPs inserted by a transpiler.
  std::size_t routing_swap_count() const noexcept;
  /// Depth = length of the longest qubit-dependency chain.
  std::size_t depth() const noexcept;

  /// Multi-line human-readable listing.
  std::string to_string() const;

 private:
  Circuit& add_simple(GateKind kind, int q);
  void check_qubit(int q) const;
  void check_param(const ParamExpr& p) const;

  int num_qubits_ = 0;
  int num_params_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace arbiterq::circuit
