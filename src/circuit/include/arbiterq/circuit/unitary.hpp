#pragma once
// Gate semantics: unitary matrices for every GateKind, plus a dense
// whole-circuit unitary used by equivalence tests (transpiler validation)
// and by the ZYZ resynthesis pass.
//
// Bit convention: qubit 0 is the least significant bit of a basis index.
// A two-qubit matrix acts in the basis |b a> where b is the bit of
// gate.qubits[0] (control for controlled gates) and a the bit of
// gate.qubits[1] (target); i.e. row/col index = 2*b + a.

#include <array>
#include <complex>
#include <cstddef>
#include <span>
#include <vector>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::circuit {

using Complex = std::complex<double>;

/// Row-major 2x2 complex matrix.
using Mat2 = std::array<Complex, 4>;
/// Row-major 4x4 complex matrix.
using Mat4 = std::array<Complex, 16>;

Mat2 mat2_multiply(const Mat2& a, const Mat2& b) noexcept;
Mat2 mat2_adjoint(const Mat2& a) noexcept;
/// Conjugate transpose of a 4x4.
Mat4 mat4_adjoint(const Mat4& a) noexcept;
bool mat2_is_unitary(const Mat2& a, double tol = 1e-10) noexcept;
bool mat4_is_unitary(const Mat4& a, double tol = 1e-10) noexcept;

/// Unitary of a single-qubit gate with bound parameter values.
Mat2 gate_matrix_1q(GateKind kind, const std::array<double, 3>& params);
/// Unitary of a two-qubit gate with bound parameter values.
Mat4 gate_matrix_2q(GateKind kind, const std::array<double, 3>& params);

/// Derivative of a parameterized 1q gate matrix with respect to
/// parameter slot `slot` (RX/RY/RZ slot 0; U3 slots 0..2). Throws
/// std::logic_error for non-parameterized kinds.
Mat2 d_gate_matrix_1q(GateKind kind, const std::array<double, 3>& params,
                      int slot);
/// Derivative of a controlled-rotation 4x4 (zero on the control=0 block,
/// the inner rotation's derivative on the control=1 block).
Mat4 d_gate_matrix_2q(GateKind kind, const std::array<double, 3>& params);

/// Named constructors used across the transpiler.
Mat2 matrix_rx(double theta) noexcept;
Mat2 matrix_ry(double theta) noexcept;
Mat2 matrix_rz(double theta) noexcept;
Mat2 matrix_u3(double theta, double phi, double lambda) noexcept;

/// Dense 2^n x 2^n unitary of a circuit under a parameter binding.
/// Row-major; intended for n <= ~10 (tests only).
std::vector<Complex> circuit_unitary(const Circuit& c,
                                     std::span<const double> params);

/// Max-norm distance between two same-size square matrices after removing
/// an optimal global phase; 0 means physically identical operations.
double unitary_distance_up_to_phase(const std::vector<Complex>& a,
                                    const std::vector<Complex>& b);

/// Unitary of a pure qubit relabeling: out[perm[q]] = in[q].
std::vector<Complex> permutation_unitary(const std::vector<int>& perm);

std::vector<Complex> multiply_square(const std::vector<Complex>& a,
                                     const std::vector<Complex>& b);

}  // namespace arbiterq::circuit
