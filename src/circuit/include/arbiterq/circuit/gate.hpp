#pragma once
// Gate-level IR. A gate stores its kind, the qubits it acts on and up to
// three angle parameters. Each angle is a ParamExpr — an affine function
// of one entry of an external parameter vector — so a circuit transpiled
// once can be re-bound to new weights every training step without
// re-transpiling (decompositions like CRZ(θ) → RZ(θ/2)·CX·RZ(−θ/2)·CX
// keep the symbolic link through the coefficient).

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace arbiterq::circuit {

enum class GateKind : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kSX,
  kRX,
  kRY,
  kRZ,
  kU3,
  kCX,
  kCZ,
  kCRX,
  kCRY,
  kCRZ,
  kSwap,
};

/// Number of qubits a gate kind acts on (1 or 2).
int gate_arity(GateKind kind) noexcept;
/// Number of angle parameters (0, 1 or 3).
int gate_param_count(GateKind kind) noexcept;
/// Lower-case mnemonic, e.g. "crz".
std::string gate_name(GateKind kind);

/// value = coeff * params[index] + offset; index < 0 means a constant.
struct ParamExpr {
  int index = -1;
  double coeff = 1.0;
  double offset = 0.0;

  static ParamExpr constant(double v) noexcept { return {-1, 0.0, v}; }
  static ParamExpr ref(int idx, double coeff = 1.0,
                       double offset = 0.0) noexcept {
    return {idx, coeff, offset};
  }

  bool is_constant() const noexcept { return index < 0; }

  double value(std::span<const double> params) const {
    return is_constant() ? offset
                         : coeff * params[static_cast<std::size_t>(index)] +
                               offset;
  }
};

struct Gate {
  GateKind kind = GateKind::kI;
  // qubits[0] is the (single) target for 1q gates; for controlled gates
  // qubits[0] is the control and qubits[1] the target; SWAP is symmetric.
  std::array<int, 2> qubits{{0, 0}};
  std::array<ParamExpr, 3> params{};
  // Index of the logical QNN gate this physical gate was decomposed from;
  // -1 for gates that do not trace back (e.g. routing SWAPs). Behavioral
  // vectorization (paper §III-A) groups basis-gate errors by this id.
  int logical_id = -1;
  // True for SWAPs inserted by the router (the topological part of the
  // behavioral vector); the SWAP's `logical_id` then names the two-qubit
  // logical gate whose routing required it.
  bool is_routing_swap = false;

  int arity() const noexcept { return gate_arity(kind); }
  int param_count() const noexcept { return gate_param_count(kind); }

  /// Bound angle values under a parameter vector.
  std::array<double, 3> bound_params(std::span<const double> params) const;

  /// "crz(q0,q1; 0.5*p3)" style rendering for dumps and tests.
  std::string to_string() const;
};

}  // namespace arbiterq::circuit
