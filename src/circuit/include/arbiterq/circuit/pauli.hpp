#pragma once
// Pauli-string observables (e.g. "ZIIZ"): the general readout alphabet a
// QNN measurement layer draws from. The stack's binary classifier only
// needs Z on one qubit, but multi-observable readout (parity checks,
// energy terms) is standard library surface.

#include <cstdint>
#include <string>
#include <vector>

namespace arbiterq::circuit {

enum class PauliOp : std::uint8_t { kI = 0, kX = 1, kY = 2, kZ = 3 };

char pauli_char(PauliOp op);

class PauliString {
 public:
  /// Identity string over n qubits.
  explicit PauliString(int num_qubits);

  /// Parse "ZIXY" (leftmost char = qubit 0). Throws on bad characters.
  static PauliString parse(const std::string& text);

  int num_qubits() const noexcept {
    return static_cast<int>(ops_.size());
  }
  PauliOp op(int qubit) const;
  PauliString& set(int qubit, PauliOp op);

  /// Number of non-identity factors.
  int weight() const noexcept;
  bool is_identity() const noexcept { return weight() == 0; }

  /// "ZIXY" form.
  std::string to_string() const;

  bool operator==(const PauliString& other) const noexcept {
    return ops_ == other.ops_;
  }

  /// True if the two strings commute as operators (they anticommute on
  /// an odd number of qubits where both act with different non-identity
  /// Paulis).
  bool commutes_with(const PauliString& other) const;

 private:
  std::vector<PauliOp> ops_;
};

}  // namespace arbiterq::circuit
