#pragma once
// Plain-text circuit serialization. OpenQASM cannot carry this IR's
// affine symbolic parameters (coeff*p[k] + offset) or the transpiler's
// provenance tags, so the format is our own, line-oriented and
// diff-friendly:
//
//   aqc 1
//   qubits 3
//   params 4
//   ry q1 p0*0.5+1.5708
//   crz q0 q2 p3
//   swap q0 q1 @route:4        # routing SWAP attributed to logical gate 4
//   x q2 @id:7
//
// Angles are either a constant (decimal) or pN[*coeff][+offset].
// serialize/deserialize round-trip exactly (modulo float formatting at
// 17 significant digits, which is lossless for doubles).

#include <string>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::circuit {

std::string serialize(const Circuit& c);

/// Parse a serialized circuit; throws std::invalid_argument with a
/// line-numbered message on malformed input.
Circuit deserialize(const std::string& text);

}  // namespace arbiterq::circuit
