#include "arbiterq/circuit/gate.hpp"

#include <sstream>
#include <stdexcept>

namespace arbiterq::circuit {

int gate_arity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
    case GateKind::kSwap:
      return 2;
    default:
      return 1;
  }
}

int gate_param_count(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kCRX:
    case GateKind::kCRY:
    case GateKind::kCRZ:
      return 1;
    case GateKind::kU3:
      return 3;
    default:
      return 0;
  }
}

std::string gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kI:
      return "i";
    case GateKind::kX:
      return "x";
    case GateKind::kY:
      return "y";
    case GateKind::kZ:
      return "z";
    case GateKind::kH:
      return "h";
    case GateKind::kS:
      return "s";
    case GateKind::kSdg:
      return "sdg";
    case GateKind::kSX:
      return "sx";
    case GateKind::kRX:
      return "rx";
    case GateKind::kRY:
      return "ry";
    case GateKind::kRZ:
      return "rz";
    case GateKind::kU3:
      return "u3";
    case GateKind::kCX:
      return "cx";
    case GateKind::kCZ:
      return "cz";
    case GateKind::kCRX:
      return "crx";
    case GateKind::kCRY:
      return "cry";
    case GateKind::kCRZ:
      return "crz";
    case GateKind::kSwap:
      return "swap";
  }
  throw std::logic_error("gate_name: unknown kind");
}

std::array<double, 3> Gate::bound_params(std::span<const double> params) const {
  std::array<double, 3> out{{0.0, 0.0, 0.0}};
  for (int i = 0; i < param_count(); ++i) {
    out[static_cast<std::size_t>(i)] =
        this->params[static_cast<std::size_t>(i)].value(params);
  }
  return out;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind) << "(q" << qubits[0];
  if (arity() == 2) os << ",q" << qubits[1];
  if (param_count() > 0) {
    os << ";";
    for (int i = 0; i < param_count(); ++i) {
      const ParamExpr& p = params[static_cast<std::size_t>(i)];
      if (i > 0) os << ",";
      if (p.is_constant()) {
        os << " " << p.offset;
      } else {
        os << " " << p.coeff << "*p" << p.index;
        if (p.offset != 0.0) os << "+" << p.offset;
      }
    }
  }
  os << ")";
  if (is_routing_swap) os << "[route]";
  return os.str();
}

}  // namespace arbiterq::circuit
