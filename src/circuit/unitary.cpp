#include "arbiterq/circuit/unitary.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arbiterq::circuit {

namespace {

constexpr Complex kI{0.0, 1.0};

Mat4 controlled(const Mat2& u) noexcept {
  // |control target>: identity on the control=0 block, u on control=1.
  Mat4 m{};
  m[0 * 4 + 0] = 1.0;
  m[1 * 4 + 1] = 1.0;
  m[2 * 4 + 2] = u[0];
  m[2 * 4 + 3] = u[1];
  m[3 * 4 + 2] = u[2];
  m[3 * 4 + 3] = u[3];
  return m;
}

}  // namespace

Mat2 mat2_multiply(const Mat2& a, const Mat2& b) noexcept {
  Mat2 c{};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      c[static_cast<std::size_t>(i * 2 + j)] =
          a[static_cast<std::size_t>(i * 2)] *
              b[static_cast<std::size_t>(j)] +
          a[static_cast<std::size_t>(i * 2 + 1)] *
              b[static_cast<std::size_t>(2 + j)];
    }
  }
  return c;
}

Mat2 mat2_adjoint(const Mat2& a) noexcept {
  return {std::conj(a[0]), std::conj(a[2]), std::conj(a[1]), std::conj(a[3])};
}

Mat4 mat4_adjoint(const Mat4& a) noexcept {
  Mat4 md{};
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      md[static_cast<std::size_t>(r * 4 + c)] =
          std::conj(a[static_cast<std::size_t>(c * 4 + r)]);
    }
  }
  return md;
}

bool mat2_is_unitary(const Mat2& a, double tol) noexcept {
  const Mat2 p = mat2_multiply(mat2_adjoint(a), a);
  return std::abs(p[0] - 1.0) < tol && std::abs(p[3] - 1.0) < tol &&
         std::abs(p[1]) < tol && std::abs(p[2]) < tol;
}

bool mat4_is_unitary(const Mat4& a, double tol) noexcept {
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      Complex acc{0.0, 0.0};
      for (int k = 0; k < 4; ++k) {
        acc += std::conj(a[static_cast<std::size_t>(k * 4 + i)]) *
               a[static_cast<std::size_t>(k * 4 + j)];
      }
      const Complex expect = (i == j) ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
      if (std::abs(acc - expect) > tol) return false;
    }
  }
  return true;
}

Mat2 matrix_rx(double theta) noexcept {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0.0}, -kI * s, -kI * s, Complex{c, 0.0}};
}

Mat2 matrix_ry(double theta) noexcept {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0.0}, Complex{-s, 0.0}, Complex{s, 0.0}, Complex{c, 0.0}};
}

Mat2 matrix_rz(double theta) noexcept {
  return {std::exp(-kI * (theta / 2.0)), Complex{0.0, 0.0}, Complex{0.0, 0.0},
          std::exp(kI * (theta / 2.0))};
}

Mat2 matrix_u3(double theta, double phi, double lambda) noexcept {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {Complex{c, 0.0}, -std::exp(kI * lambda) * s,
          std::exp(kI * phi) * s, std::exp(kI * (phi + lambda)) * c};
}

Mat2 gate_matrix_1q(GateKind kind, const std::array<double, 3>& p) {
  const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
  switch (kind) {
    case GateKind::kI:
      return {1.0, 0.0, 0.0, 1.0};
    case GateKind::kX:
      return {0.0, 1.0, 1.0, 0.0};
    case GateKind::kY:
      return {Complex{0.0, 0.0}, -kI, kI, Complex{0.0, 0.0}};
    case GateKind::kZ:
      return {1.0, 0.0, 0.0, -1.0};
    case GateKind::kH:
      return {inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2};
    case GateKind::kS:
      return {1.0, 0.0, 0.0, kI};
    case GateKind::kSdg:
      return {1.0, 0.0, 0.0, -kI};
    case GateKind::kSX:
      return {Complex{0.5, 0.5}, Complex{0.5, -0.5}, Complex{0.5, -0.5},
              Complex{0.5, 0.5}};
    case GateKind::kRX:
      return matrix_rx(p[0]);
    case GateKind::kRY:
      return matrix_ry(p[0]);
    case GateKind::kRZ:
      return matrix_rz(p[0]);
    case GateKind::kU3:
      return matrix_u3(p[0], p[1], p[2]);
    default:
      throw std::invalid_argument("gate_matrix_1q: not a one-qubit gate");
  }
}

Mat4 gate_matrix_2q(GateKind kind, const std::array<double, 3>& p) {
  switch (kind) {
    case GateKind::kCX:
      return controlled(gate_matrix_1q(GateKind::kX, {}));
    case GateKind::kCZ:
      return controlled(gate_matrix_1q(GateKind::kZ, {}));
    case GateKind::kCRX:
      return controlled(matrix_rx(p[0]));
    case GateKind::kCRY:
      return controlled(matrix_ry(p[0]));
    case GateKind::kCRZ:
      return controlled(matrix_rz(p[0]));
    case GateKind::kSwap: {
      Mat4 m{};
      m[0 * 4 + 0] = 1.0;
      m[1 * 4 + 2] = 1.0;
      m[2 * 4 + 1] = 1.0;
      m[3 * 4 + 3] = 1.0;
      return m;
    }
    default:
      throw std::invalid_argument("gate_matrix_2q: not a two-qubit gate");
  }
}

Mat2 d_gate_matrix_1q(GateKind kind, const std::array<double, 3>& p,
                      int slot) {
  const double c = std::cos(p[0] / 2.0);
  const double s = std::sin(p[0] / 2.0);
  switch (kind) {
    case GateKind::kRX:
      return {Complex{-s / 2, 0}, -kI * (c / 2), -kI * (c / 2),
              Complex{-s / 2, 0}};
    case GateKind::kRY:
      return {Complex{-s / 2, 0}, Complex{-c / 2, 0}, Complex{c / 2, 0},
              Complex{-s / 2, 0}};
    case GateKind::kRZ:
      return {-kI * 0.5 * std::exp(-kI * (p[0] / 2.0)), Complex{0, 0},
              Complex{0, 0}, kI * 0.5 * std::exp(kI * (p[0] / 2.0))};
    case GateKind::kU3: {
      const Complex el = std::exp(kI * p[2]);
      const Complex ep = std::exp(kI * p[1]);
      const Complex epl = std::exp(kI * (p[1] + p[2]));
      switch (slot) {
        case 0:
          return {Complex{-s / 2, 0}, -el * (c / 2), ep * (c / 2),
                  -epl * (s / 2)};
        case 1:
          return {Complex{0, 0}, Complex{0, 0}, kI * ep * s, kI * epl * c};
        case 2:
          return {Complex{0, 0}, -kI * el * s, Complex{0, 0}, kI * epl * c};
        default:
          break;
      }
      throw std::logic_error("d_gate_matrix_1q: bad U3 slot");
    }
    default:
      throw std::logic_error("d_gate_matrix_1q: gate is not parameterized");
  }
}

Mat4 d_gate_matrix_2q(GateKind kind, const std::array<double, 3>& p) {
  GateKind inner;
  switch (kind) {
    case GateKind::kCRX:
      inner = GateKind::kRX;
      break;
    case GateKind::kCRY:
      inner = GateKind::kRY;
      break;
    case GateKind::kCRZ:
      inner = GateKind::kRZ;
      break;
    default:
      throw std::logic_error("d_gate_matrix_2q: gate is not parameterized");
  }
  const Mat2 d = d_gate_matrix_1q(inner, p, 0);
  Mat4 m{};
  m[2 * 4 + 2] = d[0];
  m[2 * 4 + 3] = d[1];
  m[3 * 4 + 2] = d[2];
  m[3 * 4 + 3] = d[3];
  return m;
}

std::vector<Complex> circuit_unitary(const Circuit& c,
                                     std::span<const double> params) {
  const int n = c.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  std::vector<Complex> u(dim * dim, Complex{0.0, 0.0});
  for (std::size_t i = 0; i < dim; ++i) u[i * dim + i] = 1.0;

  // Apply gates column-wise: for each basis-state column of the current
  // unitary, evolve it like a state vector.
  for (const Gate& g : c.gates()) {
    const auto bound = g.bound_params(params);
    if (g.arity() == 1) {
      const Mat2 m = gate_matrix_1q(g.kind, bound);
      const std::size_t bit = std::size_t{1} << g.qubits[0];
      for (std::size_t col = 0; col < dim; ++col) {
        for (std::size_t row = 0; row < dim; ++row) {
          if (row & bit) continue;
          const std::size_t r0 = row;
          const std::size_t r1 = row | bit;
          const Complex a0 = u[r0 * dim + col];
          const Complex a1 = u[r1 * dim + col];
          u[r0 * dim + col] = m[0] * a0 + m[1] * a1;
          u[r1 * dim + col] = m[2] * a0 + m[3] * a1;
        }
      }
    } else {
      const Mat4 m = gate_matrix_2q(g.kind, bound);
      const std::size_t bit_b = std::size_t{1} << g.qubits[0];
      const std::size_t bit_a = std::size_t{1} << g.qubits[1];
      for (std::size_t col = 0; col < dim; ++col) {
        for (std::size_t row = 0; row < dim; ++row) {
          if ((row & bit_b) || (row & bit_a)) continue;
          std::size_t idx[4];
          idx[0] = row;                  // b=0 a=0
          idx[1] = row | bit_a;          // b=0 a=1
          idx[2] = row | bit_b;          // b=1 a=0
          idx[3] = row | bit_b | bit_a;  // b=1 a=1
          Complex amp[4];
          for (int k = 0; k < 4; ++k) amp[k] = u[idx[k] * dim + col];
          for (int r = 0; r < 4; ++r) {
            Complex acc{0.0, 0.0};
            for (int k = 0; k < 4; ++k) {
              acc += m[static_cast<std::size_t>(r * 4 + k)] * amp[k];
            }
            u[idx[r] * dim + col] = acc;
          }
        }
      }
    }
  }
  return u;
}

double unitary_distance_up_to_phase(const std::vector<Complex>& a,
                                    const std::vector<Complex>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("unitary_distance: size mismatch");
  }
  // Phase-align with the inner product <a, b> = sum conj(a_ij) b_ij.
  Complex inner{0.0, 0.0};
  for (std::size_t i = 0; i < a.size(); ++i) inner += std::conj(a[i]) * b[i];
  Complex phase{1.0, 0.0};
  if (std::abs(inner) > 1e-12) phase = inner / std::abs(inner);
  double dist = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dist = std::max(dist, std::abs(a[i] * phase - b[i]));
  }
  return dist;
}

std::vector<Complex> permutation_unitary(const std::vector<int>& perm) {
  const int n = static_cast<int>(perm.size());
  const std::size_t dim = std::size_t{1} << n;
  std::vector<Complex> u(dim * dim, Complex{0.0, 0.0});
  for (std::size_t in = 0; in < dim; ++in) {
    std::size_t out = 0;
    for (int q = 0; q < n; ++q) {
      if (in & (std::size_t{1} << q)) {
        out |= std::size_t{1} << perm[static_cast<std::size_t>(q)];
      }
    }
    u[out * dim + in] = 1.0;
  }
  return u;
}

std::vector<Complex> multiply_square(const std::vector<Complex>& a,
                                     const std::vector<Complex>& b) {
  const auto dim = static_cast<std::size_t>(std::sqrt(a.size()) + 0.5);
  if (dim * dim != a.size() || a.size() != b.size()) {
    throw std::invalid_argument("multiply_square: bad shapes");
  }
  std::vector<Complex> c(a.size(), Complex{0.0, 0.0});
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t k = 0; k < dim; ++k) {
      const Complex aik = a[i * dim + k];
      if (aik == Complex{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < dim; ++j) {
        c[i * dim + j] += aik * b[k * dim + j];
      }
    }
  }
  return c;
}

}  // namespace arbiterq::circuit
