#include "arbiterq/circuit/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace arbiterq::circuit {

Circuit::Circuit(int num_qubits, int num_params)
    : num_qubits_(num_qubits), num_params_(num_params) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("Circuit: qubit count must be positive");
  }
  if (num_params < 0) {
    throw std::invalid_argument("Circuit: negative parameter count");
  }
}

void Circuit::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Circuit: qubit index out of range");
  }
}

void Circuit::check_param(const ParamExpr& p) const {
  if (!p.is_constant() && p.index >= num_params_) {
    throw std::out_of_range("Circuit: parameter index out of range");
  }
}

Circuit& Circuit::add(Gate g) {
  check_qubit(g.qubits[0]);
  if (g.arity() == 2) {
    check_qubit(g.qubits[1]);
    if (g.qubits[0] == g.qubits[1]) {
      throw std::invalid_argument("Circuit: two-qubit gate on equal qubits");
    }
  }
  for (int i = 0; i < g.param_count(); ++i) {
    check_param(g.params[static_cast<std::size_t>(i)]);
  }
  gates_.push_back(g);
  return *this;
}

Circuit& Circuit::add_simple(GateKind kind, int q) {
  Gate g;
  g.kind = kind;
  g.qubits = {q, 0};
  return add(g);
}

Circuit& Circuit::rx(int q, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kRX;
  g.qubits = {q, 0};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::ry(int q, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kRY;
  g.qubits = {q, 0};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::rz(int q, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kRZ;
  g.qubits = {q, 0};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::u3(int q, ParamExpr theta, ParamExpr phi, ParamExpr lambda) {
  Gate g;
  g.kind = GateKind::kU3;
  g.qubits = {q, 0};
  g.params = {theta, phi, lambda};
  return add(g);
}

Circuit& Circuit::cx(int control, int target) {
  Gate g;
  g.kind = GateKind::kCX;
  g.qubits = {control, target};
  return add(g);
}

Circuit& Circuit::cz(int control, int target) {
  Gate g;
  g.kind = GateKind::kCZ;
  g.qubits = {control, target};
  return add(g);
}

Circuit& Circuit::crx(int control, int target, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kCRX;
  g.qubits = {control, target};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::cry(int control, int target, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kCRY;
  g.qubits = {control, target};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::crz(int control, int target, ParamExpr theta) {
  Gate g;
  g.kind = GateKind::kCRZ;
  g.qubits = {control, target};
  g.params[0] = theta;
  return add(g);
}

Circuit& Circuit::swap(int a, int b) {
  Gate g;
  g.kind = GateKind::kSwap;
  g.qubits = {a, b};
  return add(g);
}

Circuit& Circuit::append(const Circuit& other, int param_offset) {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("Circuit::append: qubit count mismatch");
  }
  for (Gate g : other.gates_) {
    for (int i = 0; i < g.param_count(); ++i) {
      auto& p = g.params[static_cast<std::size_t>(i)];
      if (!p.is_constant()) p.index += param_offset;
    }
    add(g);
  }
  return *this;
}

std::size_t Circuit::two_qubit_gate_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.arity() == 2; }));
}

std::size_t Circuit::routing_swap_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(gates_.begin(), gates_.end(),
                    [](const Gate& g) { return g.is_routing_swap; }));
}

std::size_t Circuit::depth() const noexcept {
  std::vector<std::size_t> level(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    const auto q0 = static_cast<std::size_t>(g.qubits[0]);
    std::size_t lvl = level[q0];
    if (g.arity() == 2) {
      lvl = std::max(lvl, level[static_cast<std::size_t>(g.qubits[1])]);
    }
    ++lvl;
    level[q0] = lvl;
    if (g.arity() == 2) level[static_cast<std::size_t>(g.qubits[1])] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  os << "circuit(" << num_qubits_ << " qubits, " << num_params_
     << " params):\n";
  for (const Gate& g : gates_) os << "  " << g.to_string() << "\n";
  return os.str();
}

}  // namespace arbiterq::circuit
