#include "arbiterq/circuit/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace arbiterq::circuit {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string format_param(const ParamExpr& p) {
  if (p.is_constant()) return format_double(p.offset);
  std::string out = "p" + std::to_string(p.index);
  if (p.coeff != 1.0) out += "*" + format_double(p.coeff);
  if (p.offset != 0.0) {
    out += (p.offset > 0.0 ? "+" : "") + format_double(p.offset);
  }
  return out;
}

GateKind kind_from_name(const std::string& name, int line) {
  static const std::vector<std::pair<std::string, GateKind>> kTable = {
      {"i", GateKind::kI},     {"x", GateKind::kX},
      {"y", GateKind::kY},     {"z", GateKind::kZ},
      {"h", GateKind::kH},     {"s", GateKind::kS},
      {"sdg", GateKind::kSdg}, {"sx", GateKind::kSX},
      {"rx", GateKind::kRX},   {"ry", GateKind::kRY},
      {"rz", GateKind::kRZ},   {"u3", GateKind::kU3},
      {"cx", GateKind::kCX},   {"cz", GateKind::kCZ},
      {"crx", GateKind::kCRX}, {"cry", GateKind::kCRY},
      {"crz", GateKind::kCRZ}, {"swap", GateKind::kSwap},
  };
  for (const auto& [n, k] : kTable) {
    if (n == name) return k;
  }
  throw std::invalid_argument("deserialize: line " + std::to_string(line) +
                              ": unknown gate '" + name + "'");
}

int parse_qubit(const std::string& token, int line) {
  if (token.size() < 2 || token[0] != 'q') {
    throw std::invalid_argument("deserialize: line " + std::to_string(line) +
                                ": expected qubit token, got '" + token +
                                "'");
  }
  return std::atoi(token.c_str() + 1);
}

ParamExpr parse_param(const std::string& token, int line) {
  if (token.empty()) {
    throw std::invalid_argument("deserialize: line " + std::to_string(line) +
                                ": empty parameter");
  }
  if (token[0] != 'p') {
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      throw std::invalid_argument("deserialize: line " +
                                  std::to_string(line) +
                                  ": bad constant '" + token + "'");
    }
    return ParamExpr::constant(v);
  }
  // pN[*coeff][+offset|-offset]
  std::size_t pos = 1;
  std::size_t digits = 0;
  while (pos + digits < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[pos + digits]))) {
    ++digits;
  }
  if (digits == 0) {
    throw std::invalid_argument("deserialize: line " + std::to_string(line) +
                                ": bad parameter reference '" + token + "'");
  }
  const int index = std::atoi(token.substr(pos, digits).c_str());
  pos += digits;
  double coeff = 1.0;
  if (pos < token.size() && token[pos] == '*') {
    char* end = nullptr;
    coeff = std::strtod(token.c_str() + pos + 1, &end);
    pos = static_cast<std::size_t>(end - token.c_str());
  }
  double offset = 0.0;
  if (pos < token.size() && (token[pos] == '+' || token[pos] == '-')) {
    char* end = nullptr;
    offset = std::strtod(token.c_str() + pos, &end);
    pos = static_cast<std::size_t>(end - token.c_str());
  }
  if (pos != token.size()) {
    throw std::invalid_argument("deserialize: line " + std::to_string(line) +
                                ": trailing junk in '" + token + "'");
  }
  return ParamExpr::ref(index, coeff, offset);
}

}  // namespace

std::string serialize(const Circuit& c) {
  std::ostringstream os;
  os << "aqc 1\n";
  os << "qubits " << c.num_qubits() << "\n";
  os << "params " << c.num_params() << "\n";
  for (const Gate& g : c.gates()) {
    os << gate_name(g.kind) << " q" << g.qubits[0];
    if (g.arity() == 2) os << " q" << g.qubits[1];
    for (int k = 0; k < g.param_count(); ++k) {
      os << " " << format_param(g.params[static_cast<std::size_t>(k)]);
    }
    if (g.is_routing_swap) {
      os << " @route:" << g.logical_id;
    } else if (g.logical_id >= 0) {
      os << " @id:" << g.logical_id;
    }
    os << "\n";
  }
  return os.str();
}

Circuit deserialize(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  int num_qubits = -1;
  int num_params = -1;

  auto next_tokens = [&](std::vector<std::string>* tokens) {
    while (std::getline(is, line)) {
      ++line_no;
      // Strip comments.
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      tokens->clear();
      std::string tok;
      while (ls >> tok) tokens->push_back(tok);
      if (!tokens->empty()) return true;
    }
    return false;
  };

  std::vector<std::string> tokens;
  if (!next_tokens(&tokens) || tokens.size() != 2 || tokens[0] != "aqc" ||
      tokens[1] != "1") {
    throw std::invalid_argument("deserialize: missing 'aqc 1' header");
  }
  if (!next_tokens(&tokens) || tokens.size() != 2 ||
      tokens[0] != "qubits") {
    throw std::invalid_argument("deserialize: missing 'qubits N'");
  }
  num_qubits = std::atoi(tokens[1].c_str());
  if (!next_tokens(&tokens) || tokens.size() != 2 ||
      tokens[0] != "params") {
    throw std::invalid_argument("deserialize: missing 'params N'");
  }
  num_params = std::atoi(tokens[1].c_str());

  Circuit c(num_qubits, num_params);
  while (next_tokens(&tokens)) {
    Gate g;
    g.kind = kind_from_name(tokens[0], line_no);
    std::size_t pos = 1;
    if (pos >= tokens.size()) {
      throw std::invalid_argument("deserialize: line " +
                                  std::to_string(line_no) +
                                  ": missing qubits");
    }
    g.qubits[0] = parse_qubit(tokens[pos++], line_no);
    if (g.arity() == 2) {
      if (pos >= tokens.size()) {
        throw std::invalid_argument("deserialize: line " +
                                    std::to_string(line_no) +
                                    ": missing second qubit");
      }
      g.qubits[1] = parse_qubit(tokens[pos++], line_no);
    }
    for (int k = 0; k < g.param_count(); ++k) {
      if (pos >= tokens.size()) {
        throw std::invalid_argument("deserialize: line " +
                                    std::to_string(line_no) +
                                    ": missing parameter");
      }
      g.params[static_cast<std::size_t>(k)] =
          parse_param(tokens[pos++], line_no);
    }
    if (pos < tokens.size() && tokens[pos].rfind("@route:", 0) == 0) {
      g.is_routing_swap = true;
      g.logical_id = std::atoi(tokens[pos].c_str() + 7);
      ++pos;
    } else if (pos < tokens.size() && tokens[pos].rfind("@id:", 0) == 0) {
      g.logical_id = std::atoi(tokens[pos].c_str() + 4);
      ++pos;
    }
    if (pos != tokens.size()) {
      throw std::invalid_argument("deserialize: line " +
                                  std::to_string(line_no) +
                                  ": trailing tokens");
    }
    c.add(g);
  }
  return c;
}

}  // namespace arbiterq::circuit
