#include "arbiterq/circuit/pauli.hpp"

#include <stdexcept>

namespace arbiterq::circuit {

char pauli_char(PauliOp op) {
  switch (op) {
    case PauliOp::kI:
      return 'I';
    case PauliOp::kX:
      return 'X';
    case PauliOp::kY:
      return 'Y';
    case PauliOp::kZ:
      return 'Z';
  }
  throw std::logic_error("pauli_char: unknown op");
}

PauliString::PauliString(int num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("PauliString: qubit count must be positive");
  }
  ops_.assign(static_cast<std::size_t>(num_qubits), PauliOp::kI);
}

PauliString PauliString::parse(const std::string& text) {
  PauliString p(static_cast<int>(text.size()));
  for (std::size_t q = 0; q < text.size(); ++q) {
    switch (text[q]) {
      case 'I':
      case 'i':
        p.ops_[q] = PauliOp::kI;
        break;
      case 'X':
      case 'x':
        p.ops_[q] = PauliOp::kX;
        break;
      case 'Y':
      case 'y':
        p.ops_[q] = PauliOp::kY;
        break;
      case 'Z':
      case 'z':
        p.ops_[q] = PauliOp::kZ;
        break;
      default:
        throw std::invalid_argument("PauliString::parse: bad character");
    }
  }
  return p;
}

PauliOp PauliString::op(int qubit) const {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw std::out_of_range("PauliString::op: qubit out of range");
  }
  return ops_[static_cast<std::size_t>(qubit)];
}

PauliString& PauliString::set(int qubit, PauliOp op) {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw std::out_of_range("PauliString::set: qubit out of range");
  }
  ops_[static_cast<std::size_t>(qubit)] = op;
  return *this;
}

int PauliString::weight() const noexcept {
  int w = 0;
  for (PauliOp op : ops_) {
    if (op != PauliOp::kI) ++w;
  }
  return w;
}

std::string PauliString::to_string() const {
  std::string out;
  out.reserve(ops_.size());
  for (PauliOp op : ops_) out.push_back(pauli_char(op));
  return out;
}

bool PauliString::commutes_with(const PauliString& other) const {
  if (num_qubits() != other.num_qubits()) {
    throw std::invalid_argument("commutes_with: qubit count mismatch");
  }
  int anticommuting = 0;
  for (std::size_t q = 0; q < ops_.size(); ++q) {
    const PauliOp a = ops_[q];
    const PauliOp b = other.ops_[q];
    if (a != PauliOp::kI && b != PauliOp::kI && a != b) ++anticommuting;
  }
  return anticommuting % 2 == 0;
}

}  // namespace arbiterq::circuit
