#pragma once
// Deterministic data-parallel helpers over the shared ThreadPool.
//
// Determinism contract: chunk boundaries depend only on (range length,
// resolved thread count, grain) — never on scheduling — and every chunk
// writes disjoint outputs, so a parallel_for produces bit-identical
// results for any pool size and any interleaving. Callers that need a
// reduction accumulate per-item (or per-chunk) partials and fold them in
// index order *after* the region: that serial barrier is what keeps
// trainer/gradient results bit-identical to the sequential schedule.
//
// Nested regions run inline (serially) on the calling thread — a worker
// blocking on sub-tasks of its own pool would deadlock, and inline
// nesting keeps the chunk math, and therefore the numerics, unchanged.
//
// Per-task randomness: split a deterministic stream off the caller's
// root Rng by item index (`task_rng(root, i)`) instead of sharing one
// generator across chunks.

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "arbiterq/exec/thread_pool.hpp"
#include "arbiterq/math/rng.hpp"

namespace arbiterq::exec {

/// Execution knobs threaded through the public APIs.
///
///  * num_threads: 1 = serial (the default — callers opt in to
///    parallelism), 0 = auto (ARBITERQ_THREADS env var when set,
///    otherwise hardware_concurrency), N > 1 = at most N-way chunking.
///  * grain: minimum items per task; 0 = auto (1 for item-sized work;
///    the statevector kernels substitute a cache-friendly default).
struct ExecPolicy {
  int num_threads = 1;
  std::size_t grain = 0;
};

/// Resolve a requested thread count: > 0 is returned as-is; 0 consults
/// the ARBITERQ_THREADS environment variable, then
/// std::thread::hardware_concurrency. Always >= 1.
int resolve_threads(int requested) noexcept;

/// Deterministic per-task stream: an independent Rng for item `index`.
inline math::Rng task_rng(const math::Rng& root, std::size_t index) {
  return root.split(static_cast<std::uint64_t>(index));
}

namespace detail {

/// Executes fn over [begin, end) split into `chunks` even pieces on the
/// shared pool (caller participates). Blocks until every chunk finished;
/// rethrows the lowest-chunk-index exception, if any.
void run_parallel(std::size_t begin, std::size_t end, std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace detail

/// Invoke fn(lo, hi) over disjoint sub-ranges covering [begin, end).
/// Serial (one inline fn(begin, end) call) when the policy resolves to
/// one thread, the range is smaller than two grains, or the caller is
/// already inside a parallel region.
template <typename Fn>
void parallel_for(const ExecPolicy& policy, std::size_t begin,
                  std::size_t end, Fn&& fn) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  const std::size_t grain = std::max<std::size_t>(policy.grain, 1);
  const auto threads =
      static_cast<std::size_t>(resolve_threads(policy.num_threads));
  const std::size_t chunks = std::min(threads, (count + grain - 1) / grain);
  if (chunks <= 1 || ThreadPool::in_parallel_region()) {
    fn(begin, end);
    return;
  }
  detail::run_parallel(begin, end, chunks,
                       std::function<void(std::size_t, std::size_t)>(
                           std::forward<Fn>(fn)));
}

/// Map fn(item, index) over a vector; out[i] is written by exactly one
/// task, so the result is identical to the serial map.
template <typename T, typename Fn>
auto parallel_map(const ExecPolicy& policy, const std::vector<T>& items,
                  Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(items[0], std::size_t{0}))>> {
  std::vector<std::decay_t<decltype(fn(items[0], std::size_t{0}))>> out(
      items.size());
  parallel_for(policy, 0, items.size(),
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) out[i] = fn(items[i], i);
               });
  return out;
}

}  // namespace arbiterq::exec
