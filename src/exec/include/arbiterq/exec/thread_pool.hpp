#pragma once
// Fixed-size worker pool behind the parallel execution engine. Workers
// pull std::function tasks off a condition-variable-guarded queue; the
// pool never grows, never steals, and never drops work — `parallel_for`
// (parallel.hpp) layers deterministic chunking, caller participation and
// exception propagation on top of it.
//
// A process-wide pool (`ThreadPool::shared()`) is created lazily at
// first use, sized by `resolve_threads(0)` — the ARBITERQ_THREADS
// environment variable when set, otherwise std::thread::hardware_concurrency.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace arbiterq::exec {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw — a throwing task is caught,
  /// counted (`exec.pool.task_errors`) and swallowed to keep the worker
  /// alive; parallel_for wraps its chunks so user exceptions surface at
  /// the call site instead.
  void submit(std::function<void()> task);

  /// The lazily-created process-wide pool (see header comment).
  static ThreadPool& shared();

  /// True on a pool worker thread, or while the current thread is
  /// executing a parallel_for region. parallel_for uses this to run
  /// nested regions inline instead of deadlocking on its own pool.
  static bool in_parallel_region() noexcept;

 private:
  friend class RegionGuard;
  void worker_main();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// RAII marker: flags the current thread as inside a parallel region for
/// the guard's lifetime (restores the previous state on destruction).
class RegionGuard {
 public:
  RegionGuard() noexcept;
  ~RegionGuard();
  RegionGuard(const RegionGuard&) = delete;
  RegionGuard& operator=(const RegionGuard&) = delete;

 private:
  bool previous_;
};

}  // namespace arbiterq::exec
