#include "arbiterq/exec/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::exec {

namespace {
thread_local bool t_in_region = false;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_main() {
  t_in_region = true;  // nested parallel_for on a worker runs inline
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    AQ_COUNTER_ADD("exec.pool.tasks", 1);
    try {
      task();
    } catch (...) {
      AQ_COUNTER_ADD("exec.pool.task_errors", 1);
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(resolve_threads(0));
  return pool;
}

bool ThreadPool::in_parallel_region() noexcept { return t_in_region; }

RegionGuard::RegionGuard() noexcept : previous_(t_in_region) {
  t_in_region = true;
}

RegionGuard::~RegionGuard() { t_in_region = previous_; }

}  // namespace arbiterq::exec
