#include "arbiterq/exec/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>

#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::exec {

int resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("ARBITERQ_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

namespace detail {

void run_parallel(std::size_t begin, std::size_t end, std::size_t chunks,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  AQ_TRACE_SPAN("exec.parallel.region");
  AQ_COUNTER_ADD("exec.parallel.regions", 1);
  AQ_COUNTER_ADD("exec.parallel.chunks", chunks);
  const std::size_t count = end - begin;

  struct State {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::vector<std::exception_ptr> errors;
  };
  auto st = std::make_shared<State>();
  st->errors.resize(chunks);

  // Chunk k covers [begin + k*count/chunks, begin + (k+1)*count/chunks):
  // boundaries are a pure function of (count, chunks), never of timing.
  auto drain = [st, begin, count, chunks, &fn] {
    for (;;) {
      const std::size_t k = st->next.fetch_add(1, std::memory_order_relaxed);
      if (k >= chunks) return;
      const std::size_t lo = begin + (count * k) / chunks;
      const std::size_t hi = begin + (count * (k + 1)) / chunks;
      try {
        fn(lo, hi);
      } catch (...) {
        st->errors[k] = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(st->mu);
      if (++st->done == chunks) st->cv.notify_all();
    }
  };

  // Caller participates: helpers only cover the chunks it can't reach.
  // `fn` outlives the region because we block below until done == chunks.
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t helpers =
      std::min(chunks - 1, static_cast<std::size_t>(pool.size()));
  for (std::size_t h = 0; h < helpers; ++h) pool.submit(drain);
  {
    RegionGuard guard;  // nested parallel_for inside fn runs inline
    drain();
  }
  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done == chunks; });
  }
  // Lowest-index failure wins, deterministically.
  for (std::size_t k = 0; k < chunks; ++k) {
    if (st->errors[k]) std::rethrow_exception(st->errors[k]);
  }
}

}  // namespace detail

}  // namespace arbiterq::exec
