#include "arbiterq/device/qpu.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::device {

std::string basis_name(BasisSet basis) {
  switch (basis) {
    case BasisSet::kIbm:
      return "{rz,sx,x,cx}";
    case BasisSet::kOrigin:
      return "{u3,cz}";
  }
  throw std::logic_error("basis_name: unknown basis");
}

Qpu::Qpu(QpuSpec spec) : spec_(std::move(spec)) {
  const int n = spec_.topology.num_qubits();
  const auto un = static_cast<std::size_t>(n);
  if (spec_.infidelity_1q < 0.0 || spec_.infidelity_1q >= 1.0 ||
      spec_.infidelity_2q < 0.0 || spec_.infidelity_2q >= 1.0) {
    throw std::invalid_argument("Qpu: infidelity outside [0, 1)");
  }
  if (spec_.t1_us <= 0.0 || spec_.t2_us <= 0.0) {
    throw std::invalid_argument("Qpu: T1/T2 must be positive");
  }

  // Deterministic calibration spread around the device averages:
  // +/-20% uniform for infidelities, Gaussian biases. Seeded per device so
  // two QPUs with identical averages still behave differently (spatial
  // heterogeneity, §II-B).
  math::Rng rng = math::Rng(spec_.noise_seed).split("calibration");
  fid_1q_.resize(un);
  bias_.resize(un);
  readout_.resize(un);
  for (std::size_t q = 0; q < un; ++q) {
    const double spread = rng.uniform(-0.2, 0.2);
    fid_1q_[q] = 1.0 - spec_.infidelity_1q * (1.0 + spread);
    bias_[q] = rng.normal(0.0, spec_.coherent_bias_scale);
    readout_[q] =
        std::clamp(spec_.readout_error * (1.0 + rng.uniform(-0.3, 0.3)), 0.0,
                   0.5);
  }
  fid_2q_.assign(un * un, 1.0 - spec_.infidelity_2q);
  for (const auto& [a, b] : spec_.topology.edges()) {
    const double spread = rng.uniform(-0.2, 0.2);
    const double f = 1.0 - spec_.infidelity_2q * (1.0 + spread);
    fid_2q_[static_cast<std::size_t>(a) * un + static_cast<std::size_t>(b)] =
        f;
    fid_2q_[static_cast<std::size_t>(b) * un + static_cast<std::size_t>(a)] =
        f;
  }
}

double Qpu::fidelity_1q(int q) const {
  return fid_1q_.at(static_cast<std::size_t>(q));
}

double Qpu::fidelity_2q(int a, int b) const {
  const auto n = static_cast<std::size_t>(num_qubits());
  if (a < 0 || b < 0 || a >= num_qubits() || b >= num_qubits()) {
    throw std::out_of_range("Qpu::fidelity_2q: qubit out of range");
  }
  return fid_2q_[static_cast<std::size_t>(a) * n + static_cast<std::size_t>(b)];
}

double Qpu::coherent_bias(int q) const {
  return bias_.at(static_cast<std::size_t>(q));
}

double Qpu::readout_error(int q) const {
  return readout_.at(static_cast<std::size_t>(q));
}

double Qpu::gate_duration_ns(circuit::GateKind kind) const {
  using circuit::GateKind;
  switch (kind) {
    case GateKind::kI:
      return 0.0;
    case GateKind::kSwap:
      return 3.0 * spec_.duration_2q_ns;
    default:
      return circuit::gate_arity(kind) == 2 ? spec_.duration_2q_ns
                                            : spec_.duration_1q_ns;
  }
}

double Qpu::gate_error(const circuit::Gate& g) const {
  if (g.kind == circuit::GateKind::kI) return 0.0;
  const double t_us = gate_duration_ns(g.kind) * 1e-3;
  if (g.arity() == 1) {
    const double f = fidelity_1q(g.qubits[0]);
    return 1.0 - std::exp(-t_us / spec_.t1_us) * f;
  }
  const double f = fidelity_2q(g.qubits[0], g.qubits[1]);
  const double e_once = 1.0 - std::exp(-(spec_.duration_2q_ns * 1e-3) /
                                       spec_.t2_us) *
                                  f;
  if (g.kind == circuit::GateKind::kSwap) {
    // SWAP executes as three native two-qubit gates.
    return 1.0 - std::pow(1.0 - e_once, 3.0);
  }
  return e_once;
}

double Qpu::shot_latency_us(std::size_t depth) const {
  // Rough serial model: depth * avg layer duration + readout + reset delay.
  const double layer_us =
      0.5 * (spec_.duration_1q_ns + spec_.duration_2q_ns) * 1e-3;
  return static_cast<double>(depth) * layer_us + spec_.readout_us +
         spec_.delay_us;
}

double Qpu::shot_rate(std::size_t depth) const {
  return 1e6 / shot_latency_us(depth);
}

sim::NoiseModel Qpu::make_noise_model() const {
  const int n = num_qubits();
  sim::NoiseModel model(n);
  const double t1q_us = spec_.duration_1q_ns * 1e-3;
  const double t2q_us = spec_.duration_2q_ns * 1e-3;
  for (int q = 0; q < n; ++q) {
    const double e = 1.0 - std::exp(-t1q_us / spec_.t1_us) * fid_1q_[
        static_cast<std::size_t>(q)];
    model.set_depolarizing_1q(q, std::clamp(e, 0.0, 1.0));
    model.set_coherent_bias(q, bias_[static_cast<std::size_t>(q)]);
    model.set_readout_error(q, readout_[static_cast<std::size_t>(q)],
                            readout_[static_cast<std::size_t>(q)]);
  }
  for (const auto& [a, b] : spec_.topology.edges()) {
    const double e =
        1.0 - std::exp(-t2q_us / spec_.t2_us) * fidelity_2q(a, b);
    model.set_depolarizing_2q(a, b, std::clamp(e, 0.0, 1.0));
  }
  return model;
}

Qpu Qpu::subdevice(const std::vector<int>& qubits, const std::string& name,
                   int id) const {
  QpuSpec sub = spec_;
  sub.name = name;
  sub.id = id;
  sub.topology = spec_.topology.induced(qubits);
  // Re-seed so the tile keeps its own identity, then overwrite the derived
  // calibration with the parent's values for the selected qubits.
  Qpu out(sub);
  const auto k = qubits.size();
  for (std::size_t i = 0; i < k; ++i) {
    out.fid_1q_[i] = fid_1q_[static_cast<std::size_t>(qubits[i])];
    out.bias_[i] = bias_[static_cast<std::size_t>(qubits[i])];
    out.readout_[i] = readout_[static_cast<std::size_t>(qubits[i])];
  }
  const auto n = static_cast<std::size_t>(num_qubits());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      out.fid_2q_[i * k + j] =
          fid_2q_[static_cast<std::size_t>(qubits[i]) * n +
                  static_cast<std::size_t>(qubits[j])];
    }
  }
  return out;
}

double Qpu::average_error() const {
  double total = 0.0;
  std::size_t count = 0;
  for (int q = 0; q < num_qubits(); ++q) {
    total += 1.0 - fidelity_1q(q);
    ++count;
  }
  for (const auto& [a, b] : spec_.topology.edges()) {
    total += 1.0 - fidelity_2q(a, b);
    ++count;
  }
  return count == 0 ? 0.0 : total / static_cast<double>(count);
}

}  // namespace arbiterq::device
