#pragma once
// Qubit coupling graph of a QPU. Routing, SWAP-cost estimation and the
// topological part of the behavioral vector all read from here.

#include <cstddef>
#include <utility>
#include <vector>

namespace arbiterq::device {

class Topology {
 public:
  Topology() = default;
  /// Undirected graph over qubits 0..n-1; duplicate/reversed edges are
  /// deduplicated; self-loops are rejected.
  Topology(int num_qubits, std::vector<std::pair<int, int>> edges);

  static Topology line(int n);
  static Topology ring(int n);
  static Topology grid(int rows, int cols);
  static Topology star(int n);
  static Topology fully_connected(int n);

  int num_qubits() const noexcept { return num_qubits_; }
  const std::vector<std::pair<int, int>>& edges() const noexcept {
    return edges_;
  }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  bool connected(int a, int b) const;
  const std::vector<int>& neighbors(int q) const;

  /// Hop distance (precomputed BFS); -1 if unreachable.
  int distance(int a, int b) const;
  /// One shortest path a -> b inclusive; empty if unreachable.
  std::vector<int> shortest_path(int a, int b) const;

  bool is_connected_graph() const;

  /// Subgraph induced by `qubits`, relabeled to 0..k-1 in the given order.
  Topology induced(const std::vector<int>& qubits) const;

 private:
  void build_caches();

  int num_qubits_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> dist_;  // dense num_qubits x num_qubits
};

}  // namespace arbiterq::device
