#pragma once
// A (simulated) quantum processing unit: coupling topology, native basis,
// calibration data (per-qubit/per-edge infidelities, T1/T2, durations,
// readout error) and the deterministic coherent-bias pattern that makes
// each device's optimal QNN weights distinct.
//
// Gate executional error follows the paper's formula (§III-A, after
// Sanders et al.):  e = 1 - exp(-t/tau) * f
// with t the gate duration, tau = T1 for single-qubit gates
// ("depolarization time") and tau = T2 for two-qubit gates ("decoherence
// time"), and f the reported gate fidelity.

#include <cstdint>
#include <string>
#include <vector>

#include "arbiterq/circuit/gate.hpp"
#include "arbiterq/device/topology.hpp"
#include "arbiterq/sim/noise_model.hpp"

namespace arbiterq::device {

/// Native gate set a transpiled circuit must use.
enum class BasisSet : std::uint8_t {
  kIbm,     ///< {RZ, SX, X, CX}
  kOrigin,  ///< {U3, CZ}
};

std::string basis_name(BasisSet basis);

struct QpuSpec {
  std::string name;
  int id = 0;
  Topology topology;
  BasisSet basis = BasisSet::kIbm;

  /// Device-average infidelities; per-qubit/per-edge values are derived
  /// from these with a deterministic +/-20% spread seeded by `noise_seed`.
  double infidelity_1q = 0.0;
  double infidelity_2q = 0.0;

  double t1_us = 100.0;  ///< depolarization time
  double t2_us = 50.0;   ///< decoherence time

  double duration_1q_ns = 30.0;
  double duration_2q_ns = 200.0;
  double readout_us = 2.0;
  /// Per-shot scheduling/reset delay; dominates shot latency on real
  /// clouds (the paper's 0.26s example uses 200us of delay per shot).
  double delay_us = 200.0;

  /// Average readout assignment infidelity.
  double readout_error = 0.01;

  /// RMS magnitude (radians) of the per-qubit coherent rotation offset.
  double coherent_bias_scale = 0.05;

  /// Seeds the per-qubit/per-edge spreads and the bias pattern.
  std::uint64_t noise_seed = 0;
};

class Qpu {
 public:
  explicit Qpu(QpuSpec spec);

  const QpuSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }
  int id() const noexcept { return spec_.id; }
  int num_qubits() const noexcept { return spec_.topology.num_qubits(); }
  const Topology& topology() const noexcept { return spec_.topology; }
  BasisSet basis() const noexcept { return spec_.basis; }

  /// Calibrated per-qubit / per-edge infidelities (fidelity = 1 - value).
  double fidelity_1q(int q) const;
  double fidelity_2q(int a, int b) const;
  double coherent_bias(int q) const;
  double readout_error(int q) const;

  /// Duration of one gate kind in nanoseconds (SWAP = 3 two-qubit gates).
  double gate_duration_ns(circuit::GateKind kind) const;

  /// Executional error e = 1 - exp(-t/tau) * f for a gate on specific
  /// qubits (paper §III-A). Two-qubit gates on non-adjacent qubits take
  /// the edge-average fidelity (they must be routed before execution).
  double gate_error(const circuit::Gate& g) const;

  /// Wall-clock of one shot of a circuit with the given depth, in us.
  double shot_latency_us(std::size_t depth) const;
  /// Shots per second at the given circuit depth.
  double shot_rate(std::size_t depth) const;

  /// Noise model over this device's qubits for the simulators. Two-qubit
  /// depolarizing probabilities are populated on topology edges.
  sim::NoiseModel make_noise_model() const;

  /// Device view restricted to `qubits` (relabeled 0..k-1): inherits
  /// calibration of the selected qubits/edges. Used to cut independent
  /// tiles out of a large chip (the Fig. 6 wukong experiment).
  Qpu subdevice(const std::vector<int>& qubits, const std::string& name,
                int id) const;

  /// Mean gate error over all qubits and edges — EQC's voting weight is
  /// derived from this single quality figure.
  double average_error() const;

 private:
  QpuSpec spec_;
  std::vector<double> fid_1q_;
  std::vector<double> fid_2q_;  // dense n x n, only edges are meaningful
  std::vector<double> bias_;
  std::vector<double> readout_;
};

}  // namespace arbiterq::device
