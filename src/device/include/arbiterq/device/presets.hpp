#pragma once
// Concrete device fleets used throughout the evaluation:
//  * the 10 simulator configurations of Table III (infidelities and T1/T2
//    exactly as printed; topology family, delays and bias scales are ours
//    — the paper does not publish them — chosen to span realistic
//    heterogeneity);
//  * an origin_wukong-like 72-qubit 6x12 grid chip (U3+CZ basis, average
//    fidelities 99.72% / 95.86% from §V-A) plus the four 2-qubit tiles the
//    Fig. 6 experiment cuts from it.

#include <vector>

#include "arbiterq/device/qpu.hpp"

namespace arbiterq::device {

/// The 10 Table III simulators. Every device gets at least `min_qubits`
/// qubits so a fleet can host any of the Table II models (the paper's
/// fleet spans 2-10 qubits; a benchmark only dispatches to devices large
/// enough for its circuit). `bias_factor` scales the per-device coherent
/// calibration error (coherent_bias_scale = bias_factor * sqrt(infid_1q));
/// it is the heterogeneity knob — larger values pull the devices' optimal
/// weights further apart.
std::vector<Qpu> table3_fleet(int min_qubits = 10, double bias_factor = 4.0);

/// First `count` devices of the Table III fleet.
std::vector<Qpu> table3_fleet_subset(int count, int min_qubits = 10,
                                     double bias_factor = 4.0);

/// Arbitrarily large simulated fleet for scale benchmarks: the Table III
/// rows cycled `count` times with per-device noise seeds, so a 256- or
/// 1024-QPU fleet keeps the paper's heterogeneity spread while every
/// device stays individually deterministic. Ids are 1..count.
std::vector<Qpu> table3_fleet_cycled(int count, int min_qubits = 10,
                                     double bias_factor = 4.0);

/// The origin_wukong-like chip: 6x12 grid, U3+CZ, f1q=99.72%, f2q=95.86%.
Qpu origin_wukong();

/// Four disjoint 2-qubit tiles cut from different regions of the wukong
/// chip, forming the Fig. 6 distributed system.
std::vector<Qpu> wukong_tiles();

}  // namespace arbiterq::device
