#include "arbiterq/device/presets.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace arbiterq::device {

namespace {

enum class TopoFamily { kLine, kRing, kGrid, kStar };

Topology make_topology(TopoFamily family, int n) {
  switch (family) {
    case TopoFamily::kLine:
      return Topology::line(n);
    case TopoFamily::kRing:
      return Topology::ring(n);
    case TopoFamily::kGrid: {
      // Closest-to-square 2-row grid; pad the qubit count up to even.
      const int cols = (n + 1) / 2;
      return Topology::grid(2, cols);
    }
    case TopoFamily::kStar:
      return Topology::star(n);
  }
  throw std::logic_error("make_topology: unknown family");
}

struct Table3Row {
  double infid_1q;  // x1e-4 in the paper; stored as absolute here
  double infid_2q;  // x1e-3 in the paper; stored as absolute here
  double t1_us;
  double t2_us;
  TopoFamily family;
  double delay_us;
};

// Infidelities and T1/T2 exactly as Table III; topology family and shot
// delay are our additions (see presets.hpp).
constexpr Table3Row kTable3[10] = {
    {2.36e-4, 7.58e-3, 193.0, 21.4, TopoFamily::kLine, 220.0},
    {3.06e-4, 8.67e-3, 137.0, 67.1, TopoFamily::kRing, 180.0},
    {1.45e-4, 4.81e-3, 349.0, 84.7, TopoFamily::kGrid, 140.0},
    {5.07e-4, 4.33e-3, 134.0, 89.2, TopoFamily::kLine, 260.0},
    {3.41e-4, 3.69e-3, 114.0, 96.5, TopoFamily::kStar, 200.0},
    {2.29e-4, 2.93e-3, 103.0, 25.7, TopoFamily::kRing, 120.0},
    {4.27e-4, 4.62e-3, 171.0, 83.2, TopoFamily::kGrid, 240.0},
    {1.72e-4, 3.66e-3, 232.0, 47.9, TopoFamily::kLine, 160.0},
    {3.66e-4, 2.90e-3, 260.0, 58.4, TopoFamily::kRing, 190.0},
    {2.42e-4, 9.75e-3, 166.0, 38.6, TopoFamily::kGrid, 280.0},
};

Qpu make_table3_device(int index, int min_qubits, double bias_factor) {
  const Table3Row& row = kTable3[static_cast<std::size_t>(index % 10)];
  QpuSpec spec;
  spec.name = "sim-qpu-" + std::to_string(index + 1);
  spec.id = index + 1;
  spec.topology = make_topology(row.family, min_qubits);
  spec.basis = BasisSet::kIbm;
  spec.infidelity_1q = row.infid_1q;
  spec.infidelity_2q = row.infid_2q;
  spec.t1_us = row.t1_us;
  spec.t2_us = row.t2_us;
  spec.delay_us = row.delay_us;
  spec.readout_error = 0.01;
  // Coherent calibration error grows with gate infidelity: a sloppier
  // device is also miscalibrated, which is what moves its optimum.
  spec.coherent_bias_scale = bias_factor * std::sqrt(row.infid_1q);
  spec.noise_seed =
      0x5EEDULL + static_cast<std::uint64_t>(index + 1) * 7919ULL;
  return Qpu(std::move(spec));
}

}  // namespace

std::vector<Qpu> table3_fleet(int min_qubits, double bias_factor) {
  return table3_fleet_subset(10, min_qubits, bias_factor);
}

std::vector<Qpu> table3_fleet_subset(int count, int min_qubits,
                                     double bias_factor) {
  if (count < 1 || count > 10) {
    throw std::invalid_argument("table3_fleet_subset: count must be 1..10");
  }
  if (min_qubits < 2) {
    throw std::invalid_argument("table3_fleet_subset: need >= 2 qubits");
  }
  std::vector<Qpu> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    fleet.push_back(make_table3_device(i, min_qubits, bias_factor));
  }
  return fleet;
}

std::vector<Qpu> table3_fleet_cycled(int count, int min_qubits,
                                     double bias_factor) {
  if (count < 1) {
    throw std::invalid_argument("table3_fleet_cycled: count must be >= 1");
  }
  if (min_qubits < 2) {
    throw std::invalid_argument("table3_fleet_cycled: need >= 2 qubits");
  }
  std::vector<Qpu> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    fleet.push_back(make_table3_device(i, min_qubits, bias_factor));
  }
  return fleet;
}

Qpu origin_wukong() {
  QpuSpec spec;
  spec.name = "origin-wukong";
  spec.id = 100;
  spec.topology = Topology::grid(6, 12);
  spec.basis = BasisSet::kOrigin;
  spec.infidelity_1q = 1.0 - 0.9972;
  spec.infidelity_2q = 1.0 - 0.9586;
  spec.t1_us = 100.0;
  spec.t2_us = 40.0;
  spec.duration_1q_ns = 40.0;
  spec.duration_2q_ns = 250.0;
  spec.delay_us = 200.0;
  spec.readout_error = 0.02;
  spec.coherent_bias_scale = 0.25;
  spec.noise_seed = 0xD0C5ULL;
  return Qpu(std::move(spec));
}

std::vector<Qpu> wukong_tiles() {
  const Qpu chip = origin_wukong();
  // Four adjacent-pair tiles from different chip regions (row*12 + col):
  // corners and center, so the spatial calibration spread is maximal.
  const std::vector<std::vector<int>> groups = {
      {0, 1},    // top-left
      {17, 18},  // row 1, middle
      {38, 50},  // column pair in the center
      {70, 71},  // bottom-right
  };
  std::vector<Qpu> tiles;
  tiles.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    tiles.push_back(chip.subdevice(groups[g],
                                   "wukong-tile-" + std::to_string(g + 1),
                                   101 + static_cast<int>(g)));
  }
  return tiles;
}

}  // namespace arbiterq::device
