#include "arbiterq/device/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace arbiterq::device {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("Topology: qubit count must be positive");
  }
  for (auto& [a, b] : edges) {
    if (a < 0 || a >= num_qubits || b < 0 || b >= num_qubits) {
      throw std::out_of_range("Topology: edge endpoint out of range");
    }
    if (a == b) throw std::invalid_argument("Topology: self-loop edge");
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  edges_ = std::move(edges);
  build_caches();
}

Topology Topology::line(int n) {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i + 1 < n; ++i) e.emplace_back(i, i + 1);
  return Topology(n, std::move(e));
}

Topology Topology::ring(int n) {
  if (n < 3) return line(n);
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < n; ++i) e.emplace_back(i, (i + 1) % n);
  return Topology(n, std::move(e));
}

Topology Topology::grid(int rows, int cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("Topology::grid: non-positive shape");
  }
  std::vector<std::pair<int, int>> e;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) e.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) e.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Topology(rows * cols, std::move(e));
}

Topology Topology::star(int n) {
  std::vector<std::pair<int, int>> e;
  for (int i = 1; i < n; ++i) e.emplace_back(0, i);
  return Topology(n, std::move(e));
}

Topology Topology::fully_connected(int n) {
  std::vector<std::pair<int, int>> e;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) e.emplace_back(i, j);
  }
  return Topology(n, std::move(e));
}

void Topology::build_caches() {
  const auto n = static_cast<std::size_t>(num_qubits_);
  adjacency_.assign(n, {});
  for (const auto& [a, b] : edges_) {
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& adj : adjacency_) std::sort(adj.begin(), adj.end());

  dist_.assign(n * n, -1);
  for (std::size_t src = 0; src < n; ++src) {
    std::queue<int> frontier;
    frontier.push(static_cast<int>(src));
    dist_[src * n + src] = 0;
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (dist_[src * n + static_cast<std::size_t>(v)] < 0) {
          dist_[src * n + static_cast<std::size_t>(v)] =
              dist_[src * n + static_cast<std::size_t>(u)] + 1;
          frontier.push(v);
        }
      }
    }
  }
}

bool Topology::connected(int a, int b) const { return distance(a, b) == 1; }

const std::vector<int>& Topology::neighbors(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Topology::neighbors: qubit out of range");
  }
  return adjacency_[static_cast<std::size_t>(q)];
}

int Topology::distance(int a, int b) const {
  if (a < 0 || a >= num_qubits_ || b < 0 || b >= num_qubits_) {
    throw std::out_of_range("Topology::distance: qubit out of range");
  }
  return dist_[static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(num_qubits_) +
               static_cast<std::size_t>(b)];
}

std::vector<int> Topology::shortest_path(int a, int b) const {
  if (distance(a, b) < 0) return {};
  std::vector<int> path{a};
  int cur = a;
  while (cur != b) {
    // Step to any neighbor strictly closer to b.
    for (int v : neighbors(cur)) {
      if (distance(v, b) == distance(cur, b) - 1) {
        cur = v;
        break;
      }
    }
    path.push_back(cur);
  }
  return path;
}

bool Topology::is_connected_graph() const {
  for (int q = 1; q < num_qubits_; ++q) {
    if (distance(0, q) < 0) return false;
  }
  return true;
}

Topology Topology::induced(const std::vector<int>& qubits) const {
  std::vector<int> relabel(static_cast<std::size_t>(num_qubits_), -1);
  for (std::size_t i = 0; i < qubits.size(); ++i) {
    const int q = qubits[i];
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Topology::induced: qubit out of range");
    }
    if (relabel[static_cast<std::size_t>(q)] >= 0) {
      throw std::invalid_argument("Topology::induced: duplicate qubit");
    }
    relabel[static_cast<std::size_t>(q)] = static_cast<int>(i);
  }
  std::vector<std::pair<int, int>> e;
  for (const auto& [a, b] : edges_) {
    const int ra = relabel[static_cast<std::size_t>(a)];
    const int rb = relabel[static_cast<std::size_t>(b)];
    if (ra >= 0 && rb >= 0) e.emplace_back(ra, rb);
  }
  return Topology(static_cast<int>(qubits.size()), std::move(e));
}

}  // namespace arbiterq::device
