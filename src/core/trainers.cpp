#include "arbiterq/core/trainers.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numbers>
#include <optional>
#include <stdexcept>

#include "arbiterq/data/dataset.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::core {

namespace {

std::vector<qnn::QnnExecutor> build_executors(
    const qnn::QnnModel& model, const std::vector<device::Qpu>& fleet,
    const qnn::ExecutorOptions& options, const exec::ExecPolicy& policy) {
  if (fleet.empty()) {
    throw std::invalid_argument("DistributedTrainer: empty fleet");
  }
  // Compiling the model for every device (routing + basis translation +
  // noise derivation) is embarrassingly parallel; build into slots so
  // each task constructs its executor in place.
  std::vector<std::optional<qnn::QnnExecutor>> slots(fleet.size());
  exec::parallel_for(policy, 0, fleet.size(),
                     [&](std::size_t lo, std::size_t hi) {
                       for (std::size_t i = lo; i < hi; ++i) {
                         slots[i].emplace(model, fleet[i], options);
                       }
                     });
  std::vector<qnn::QnnExecutor> out;
  out.reserve(fleet.size());
  for (auto& s : slots) out.push_back(std::move(*s));
  return out;
}

std::vector<BehavioralVector> build_behavioral(
    const std::vector<qnn::QnnExecutor>& executors) {
  std::vector<BehavioralVector> out;
  out.reserve(executors.size());
  for (const qnn::QnnExecutor& ex : executors) {
    out.push_back(vectorize(ex.compiled(), ex.qpu(),
                            ex.model().circuit().size()));
  }
  return out;
}

/// Zero all but the ceil(keep_fraction * n) largest-|g| components.
void prune_gradient(std::vector<double>& grad, double keep_fraction) {
  if (keep_fraction <= 0.0 || keep_fraction >= 1.0 || grad.empty()) return;
  const auto keep = static_cast<std::size_t>(
      std::ceil(keep_fraction * static_cast<double>(grad.size())));
  if (keep >= grad.size()) return;
  std::vector<double> magnitudes(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    magnitudes[i] = std::abs(grad[i]);
  }
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   magnitudes.end(), std::greater<double>());
  const double threshold = magnitudes[keep - 1];
  for (double& g : grad) {
    if (std::abs(g) < threshold) g = 0.0;
  }
}

struct Batch {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
};

Batch draw_batch(const data::EncodedSplit& split, std::size_t batch_size,
                 math::Rng rng) {
  const auto idx = data::minibatch_indices(split.train_features.size(),
                                           batch_size, 0, rng);
  Batch b;
  b.features.reserve(idx.size());
  b.labels.reserve(idx.size());
  for (std::size_t i : idx) {
    b.features.push_back(split.train_features[i]);
    b.labels.push_back(split.train_labels[i]);
  }
  return b;
}

}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kSingleNode:
      return "single-node";
    case Strategy::kAllSharing:
      return "all-sharing";
    case Strategy::kEqc:
      return "EQC";
    case Strategy::kArbiterQ:
      return "ArbiterQ";
  }
  throw std::logic_error("strategy_name: unknown strategy");
}

DistributedTrainer::DistributedTrainer(const qnn::QnnModel& model,
                                       std::vector<device::Qpu> fleet,
                                       TrainConfig config)
    : config_(config),
      executors_(build_executors(
          model, fleet,
          qnn::ExecutorOptions{config.error_mitigation, config.exec,
                               config.use_exec_plans,
                               config.batched_forward},
          config.exec)),
      behavioral_(build_behavioral(executors_)),
      similarity_(behavioral_, config.kappa) {}

std::vector<std::vector<int>> DistributedTrainer::sharing_groups() const {
  return similarity_.groups(config_.distance_threshold);
}

std::vector<double> DistributedTrainer::eqc_vote_weights() const {
  std::vector<double> votes(executors_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    votes[i] = 1.0 / std::max(executors_[i].qpu().average_error(), 1e-12);
    total += votes[i];
  }
  for (double& v : votes) v /= total;
  return votes;
}

std::vector<double> DistributedTrainer::initial_weights() const {
  math::Rng rng = math::Rng(config_.seed).split("init-weights");
  const int n = executors_.front().model().num_weights();
  std::vector<double> w(static_cast<std::size_t>(n));
  for (double& v : w) {
    v = rng.uniform(-std::numbers::pi / 4.0, std::numbers::pi / 4.0);
  }
  return w;
}

double DistributedTrainer::fleet_test_loss(
    const data::EncodedSplit& split,
    const std::vector<std::vector<double>>& w) const {
  double total = 0.0;
  for (std::size_t i = 0; i < executors_.size(); ++i) {
    total += executors_[i].dataset_loss(config_.loss, split.test_features,
                                        split.test_labels, w[i]);
  }
  return total / static_cast<double>(executors_.size());
}

double DistributedTrainer::node_test_loss(
    const data::EncodedSplit& split, std::size_t node,
    const std::vector<double>& w) const {
  return executors_[node].dataset_loss(config_.loss, split.test_features,
                                       split.test_labels, w);
}

TrainResult DistributedTrainer::train(
    Strategy strategy, const data::EncodedSplit& split,
    telemetry::TrainingTelemetry* telemetry) const {
  if (split.train_features.empty() || split.test_features.empty()) {
    throw std::invalid_argument("train: empty split");
  }
  AQ_TRACE_SPAN("core.train.run");
  const std::size_t n = executors_.size();
  const auto w0 = initial_weights();
  std::vector<std::vector<double>> weights(n, w0);

  const auto votes = eqc_vote_weights();
  const auto groups = sharing_groups();
  // peer list per node (group members minus self).
  std::vector<std::vector<int>> peers(n);
  for (const auto& g : groups) {
    for (int i : g) {
      for (int j : g) {
        if (i != j) peers[static_cast<std::size_t>(i)].push_back(j);
      }
    }
  }

  // Node -> similarity-group index/size, for the telemetry records.
  std::vector<int> group_of(n, -1);
  std::vector<int> group_size(n, 1);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (int i : groups[g]) {
      group_of[static_cast<std::size_t>(i)] = static_cast<int>(g);
      group_size[static_cast<std::size_t>(i)] =
          static_cast<int>(groups[g].size());
    }
  }

  // Single-node trains on an arbitrarily chosen device (the fleet's
  // first); like every other strategy its model is deployed on the whole
  // fleet for the per-epoch metric (Table I footnote).
  const std::size_t single = 0;

  const math::Rng root = math::Rng(config_.seed).split("train");
  TrainResult result;
  result.strategy = strategy;
  result.epoch_test_loss.reserve(static_cast<std::size_t>(config_.epochs));

  // Temporal drift works on a private copy of the executors, so this
  // const train() call never mutates the trainer's compiled artifacts.
  const bool drifting =
      config_.drift_sigma > 0.0 && config_.drift_interval > 0;
  std::vector<qnn::QnnExecutor> drifted;
  if (drifting) drifted = executors_;
  const std::vector<qnn::QnnExecutor>& execs =
      drifting ? drifted : executors_;

  std::vector<std::vector<double>> grads(n);
  std::vector<double> node_losses(n);
  std::vector<bool> online(n, true);
  std::vector<bool> prev_online(n, true);
  const std::size_t w_total = w0.size();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    AQ_TRACE_SPAN("core.train.epoch");
    AQ_COUNTER_ADD("core.train.epochs", 1);
    prev_online = online;
    if (drifting && epoch > 0 && epoch % config_.drift_interval == 0) {
      math::Rng drift_rng = root.split("drift").split(
          static_cast<std::uint64_t>(epoch));
      for (auto& ex : drifted) {
        ex.recalibrate(config_.drift_sigma, drift_rng);
      }
    }
    // Device churn: nodes drop out independently each epoch.
    if (config_.offline_probability > 0.0) {
      math::Rng churn = root.split("churn").split(
          static_cast<std::uint64_t>(epoch));
      bool any_online = false;
      for (std::size_t i = 0; i < n; ++i) {
        online[i] = !churn.bernoulli(config_.offline_probability);
        any_online |= online[i];
      }
      if (!any_online) online[0] = true;  // the fleet never fully vanishes
    }
    // Per-node gradients on per-node minibatches. Every node owns its
    // executor, its grads[i] slot, and RNG streams split by (epoch, i),
    // so the fleet fans out across the pool; results are bit-identical
    // to the serial node order for any thread count.
    auto node_gradient = [&](std::size_t i) {
      if (!online[i]) {
        grads[i].assign(w_total, 0.0);
        return;
      }
      const Batch b = draw_batch(
          split, config_.batch_size,
          root.split(static_cast<std::uint64_t>(epoch) * 1000 + i));
      grads[i] = execs[i].loss_gradient(config_.loss, b.features,
                                        b.labels, weights[i]);
      if (config_.gradient_shot_noise > 0.0) {
        math::Rng noise_rng = root.split("shot-noise")
                                  .split(static_cast<std::uint64_t>(epoch) *
                                             1000 +
                                         i);
        const double sigma =
            config_.gradient_shot_noise /
            std::sqrt(static_cast<double>(config_.batch_size));
        for (double& g : grads[i]) g += noise_rng.normal(0.0, sigma);
      }
      prune_gradient(grads[i], 1.0 - config_.gradient_prune_ratio);
    };
    if (strategy == Strategy::kSingleNode) {
      // One active node: run it on the caller so the executor's own
      // per-sample parallelism (options().exec) can engage instead.
      node_gradient(single);
    } else {
      AQ_TRACE_SPAN("core.train.gradient_fanout");
      exec::parallel_for(config_.exec, 0, n,
                         [&](std::size_t lo, std::size_t hi) {
                           for (std::size_t i = lo; i < hi; ++i) {
                             node_gradient(i);
                           }
                         });
    }

    const std::size_t w_len = weights[0].size();
    // Communication accounting (gradient vectors on the wire).
    switch (strategy) {
      case Strategy::kSingleNode:
        break;
      case Strategy::kAllSharing:
      case Strategy::kEqc: {
        std::size_t online_count = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (online[i]) ++online_count;
        }
        result.gradient_messages += 2 * online_count;
        break;
      }
      case Strategy::kArbiterQ: {
        for (std::size_t i = 0; i < n; ++i) {
          if (!online[i]) continue;
          for (int j : peers[i]) {
            if (online[static_cast<std::size_t>(j)]) {
              ++result.gradient_messages;
            }
          }
        }
        break;
      }
    }
    switch (strategy) {
      case Strategy::kSingleNode: {
        if (online[single]) {
          for (std::size_t k = 0; k < w_len; ++k) {
            weights[single][k] -= config_.learning_rate * grads[single][k];
          }
        }
        for (std::size_t i = 0; i < n; ++i) weights[i] = weights[single];
        break;
      }
      case Strategy::kAllSharing:
      case Strategy::kEqc: {
        std::vector<double> agg(w_len, 0.0);
        double weight_total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (!online[i]) continue;
          weight_total += strategy == Strategy::kEqc ? votes[i] : 1.0;
        }
        for (std::size_t i = 0; i < n; ++i) {
          if (!online[i]) continue;
          const double v =
              (strategy == Strategy::kEqc ? votes[i] : 1.0) /
              std::max(weight_total, 1e-12);
          for (std::size_t k = 0; k < w_len; ++k) agg[k] += v * grads[i][k];
        }
        for (std::size_t k = 0; k < w_len; ++k) {
          weights[0][k] -= config_.learning_rate * agg[k];
        }
        for (std::size_t i = 1; i < n; ++i) weights[i] = weights[0];
        break;
      }
      case Strategy::kArbiterQ: {
        // All effective gradients are computed before any node updates.
        // Shared gradients are *accumulated* (scaled by similarity, not
        // averaged): a node inside a tight group takes proportionally
        // larger steps, which is where the paper's convergence speedup
        // comes from — the peer gradients point to nearly the same
        // optimum, so the enlarged step is stable (§III-B).
        std::vector<std::vector<double>> eff(n,
                                             std::vector<double>(w_len, 0.0));
        for (std::size_t i = 0; i < n; ++i) {
          if (!online[i]) continue;  // offline: keeps its weights
          for (std::size_t k = 0; k < w_len; ++k) eff[i][k] = grads[i][k];
          for (int j : peers[i]) {
            if (!online[static_cast<std::size_t>(j)]) continue;
            const double s =
                similarity_.similarity(i, static_cast<std::size_t>(j));
            for (std::size_t k = 0; k < w_len; ++k) {
              eff[i][k] += s * grads[static_cast<std::size_t>(j)][k];
            }
          }
        }
        for (std::size_t i = 0; i < n; ++i) {
          if (!online[i]) continue;
          for (std::size_t k = 0; k < w_len; ++k) {
            weights[i][k] -= config_.learning_rate * eff[i][k];
          }
        }
        break;
      }
    }

    // Per-node test evaluation fans out like the gradients; telemetry
    // emission and the loss sum stay serial (ordered) behind the barrier.
    {
      AQ_TRACE_SPAN("core.train.eval_fanout");
      exec::parallel_for(
          config_.exec, 0, n, [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
              node_losses[i] = execs[i].dataset_loss(config_.loss,
                                                     split.test_features,
                                                     split.test_labels,
                                                     weights[i]);
            }
          });
    }
    double epoch_loss = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double node_loss = node_losses[i];
      epoch_loss += node_loss;
      if (telemetry != nullptr || config_.monitor != nullptr) {
        telemetry::EpochQpuRecord rec;
        rec.strategy = strategy_name(strategy);
        rec.epoch = epoch;
        rec.qpu = static_cast<int>(i);
        rec.online = online[i];
        rec.churned = epoch > 0 && online[i] != prev_online[i];
        rec.group = group_of[i];
        rec.group_size = group_size[i];
        rec.loss = node_loss;
        double norm_sq = 0.0;
        for (double g : grads[i]) norm_sq += g * g;
        rec.grad_norm = std::sqrt(norm_sq);
        // Parameter-shift accounting: a node that computed a gradient
        // this epoch would have run 2 circuits per weight per sample.
        const bool computed =
            online[i] && (strategy != Strategy::kSingleNode || i == single);
        rec.shots_estimate =
            computed ? static_cast<std::uint64_t>(2 * w_total) *
                           static_cast<std::uint64_t>(config_.batch_size)
                     : 0;
        if (telemetry != nullptr) telemetry->on_epoch(rec);
        if (config_.monitor != nullptr) config_.monitor->on_epoch(rec);
      }
    }
    result.epoch_test_loss.push_back(epoch_loss / static_cast<double>(n));
    AQ_GAUGE_SET("core.train.last_loss", result.epoch_test_loss.back());
  }

  result.weights = std::move(weights);
  result.convergence = detect_convergence(result.epoch_test_loss);
  return result;
}

}  // namespace arbiterq::core
