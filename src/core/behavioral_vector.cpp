#include "arbiterq/core/behavioral_vector.hpp"

#include <sstream>
#include <stdexcept>

namespace arbiterq::core {

std::vector<double> BehavioralVector::concatenated() const {
  std::vector<double> out;
  out.reserve(contextual.size() + topological.size());
  out.insert(out.end(), contextual.begin(), contextual.end());
  out.insert(out.end(), topological.begin(), topological.end());
  return out;
}

std::string BehavioralVector::to_string() const {
  std::ostringstream os;
  os << "behavioral[ctx:";
  for (double v : contextual) os << " " << v;
  os << " | topo:";
  for (double v : topological) os << " " << v;
  os << "]";
  return os.str();
}

BehavioralVector vectorize(const transpile::CompiledCircuit& compiled,
                           const device::Qpu& qpu,
                           std::size_t logical_size) {
  BehavioralVector bv;
  // Survival product per logical gate; converted to cumulative error at
  // the end: v(i) = 1 - prod_j (1 - e_ij).
  std::vector<double> ctx_survival(logical_size, 1.0);
  std::vector<double> topo_survival(logical_size, 1.0);

  // Contextual part from the executable (basis) gates; topological part
  // from the routed circuit's SWAPs (SWAP-level granularity, with
  // Qpu::gate_error accounting for the three native gates inside).
  for (const circuit::Gate& g : compiled.executable.gates()) {
    if (g.is_routing_swap) continue;
    if (g.logical_id < 0 ||
        static_cast<std::size_t>(g.logical_id) >= logical_size) {
      throw std::invalid_argument("vectorize: basis gate with bad logical id");
    }
    ctx_survival[static_cast<std::size_t>(g.logical_id)] *=
        1.0 - qpu.gate_error(g);
  }
  for (const circuit::Gate& g : compiled.routed.gates()) {
    if (!g.is_routing_swap) continue;
    if (g.logical_id < 0 ||
        static_cast<std::size_t>(g.logical_id) >= logical_size) {
      throw std::invalid_argument("vectorize: SWAP with bad logical id");
    }
    topo_survival[static_cast<std::size_t>(g.logical_id)] *=
        1.0 - qpu.gate_error(g);
  }

  bv.contextual.resize(logical_size);
  bv.topological.resize(logical_size);
  for (std::size_t i = 0; i < logical_size; ++i) {
    bv.contextual[i] = 1.0 - ctx_survival[i];
    bv.topological[i] = 1.0 - topo_survival[i];
  }
  return bv;
}

}  // namespace arbiterq::core
