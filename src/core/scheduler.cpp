#include "arbiterq/core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "arbiterq/math/stats.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::core {

namespace {

void finalize_report(InferenceReport& r) {
  r.mean_loss = math::mean(r.per_task_loss);
  r.loss_stddev = math::stddev(r.per_task_loss);
  std::vector<double> busy;
  for (double b : r.qpu_busy_us) {
    if (b > 0.0) busy.push_back(b);
  }
  if (!busy.empty()) {
    r.workload_imbalance = math::max_value(busy) / math::mean(busy);
    r.makespan_us = math::max_value(busy);
    r.throughput_tasks_per_s =
        1e6 * static_cast<double>(r.per_task_loss.size()) / r.makespan_us;
  }
}

}  // namespace

std::vector<InferenceTask> make_tasks(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels) {
  if (features.size() != labels.size()) {
    throw std::invalid_argument("make_tasks: size mismatch");
  }
  std::vector<InferenceTask> tasks(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    tasks[i].features = features[i];
    tasks[i].label = labels[i];
  }
  return tasks;
}

ShotOrientedScheduler::ShotOrientedScheduler(
    const std::vector<qnn::QnnExecutor>& executors,
    std::vector<std::vector<double>> weights, TorusPartition partition,
    ScheduleConfig config)
    : executors_(executors),
      weights_(std::move(weights)),
      partition_(std::move(partition)),
      config_(config) {
  if (executors_.empty() || weights_.size() != executors_.size()) {
    throw std::invalid_argument("ShotOrientedScheduler: fleet mismatch");
  }
  torus_scores_.resize(partition_.tori.size());
  torus_rate_.resize(partition_.tori.size());
  for (std::size_t t = 0; t < partition_.tori.size(); ++t) {
    double err = 0.0;
    double rate = 0.0;
    for (int q : partition_.tori[t]) {
      err += executors_[static_cast<std::size_t>(q)].qpu().average_error();
      rate += executors_[static_cast<std::size_t>(q)].shot_rate();
    }
    const auto members = static_cast<double>(partition_.tori[t].size());
    torus_scores_[t] = members > 0.0 ? -err / members : 0.0;
    torus_rate_[t] = rate;
  }
}

double ShotOrientedScheduler::torus_probability(
    std::size_t torus, const InferenceTask& task, int shots, math::Rng& rng,
    InferenceReport* report,
    std::vector<telemetry::QpuShotShare>* split) const {
  const auto& members = partition_.tori[torus];
  // Split the shots proportionally to each member's shot rate.
  double total_rate = 0.0;
  for (int q : members) {
    total_rate += executors_[static_cast<std::size_t>(q)].shot_rate();
  }
  double p = 0.0;
  int assigned = 0;
  double weight_sum = 0.0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const auto q = static_cast<std::size_t>(members[m]);
    const double share =
        executors_[q].shot_rate() / std::max(total_rate, 1e-12);
    int q_shots = m + 1 == members.size()
                      ? shots - assigned
                      : static_cast<int>(std::round(share * shots));
    q_shots = std::clamp(q_shots, 0, shots - assigned);
    if (q_shots == 0) continue;
    assigned += q_shots;
    math::Rng shot_rng = rng.split(q * 7717ULL + 13ULL);
    const double pq = executors_[q].sampled_probability(
        task.features, weights_[q], q_shots, shot_rng,
        config_.trajectories);
    p += static_cast<double>(q_shots) * pq;
    weight_sum += static_cast<double>(q_shots);
    if (report != nullptr) {
      report->qpu_shots[q] += static_cast<double>(q_shots);
      report->qpu_busy_us[q] +=
          static_cast<double>(q_shots) * executors_[q].shot_latency_us();
    }
    if (split != nullptr) {
      split->push_back({static_cast<int>(q), q_shots});
    }
  }
  return weight_sum > 0.0 ? p / weight_sum : 0.5;
}

InferenceReport ShotOrientedScheduler::run(
    const std::vector<InferenceTask>& tasks,
    telemetry::TrainingTelemetry* telemetry) const {
  if (tasks.empty()) {
    throw std::invalid_argument("ShotOrientedScheduler::run: no tasks");
  }
  AQ_TRACE_SPAN("core.infer.run");
  AQ_COUNTER_ADD("core.infer.tasks", tasks.size());
  const std::size_t n_tori = partition_.tori.size();
  InferenceReport report;
  report.per_task_loss.resize(tasks.size());
  report.qpu_shots.assign(executors_.size(), 0.0);
  report.qpu_busy_us.assign(executors_.size(), 0.0);

  math::Rng root(config_.seed);

  // Warm-up: sketch task difficulty with a few shots round-robin across
  // tori (cheap, counted toward the workload).
  std::vector<double> difficulty(tasks.size());
  {
    AQ_TRACE_SPAN("core.infer.warmup");
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      math::Rng rng = root.split("warmup").split(i);
      const double p = torus_probability(i % n_tori, tasks[i],
                                         config_.warmup_shots, rng, &report);
      difficulty[i] = qnn::loss_value(config_.loss, p, tasks[i].label);
    }
  }

  // Greedy assignment: hard tasks to accurate tori, under throughput-
  // proportional quotas.
  std::vector<std::size_t> task_torus(tasks.size());
  {
    AQ_TRACE_SPAN("core.infer.assign");
    std::vector<std::size_t> task_order(tasks.size());
    std::iota(task_order.begin(), task_order.end(), 0);
    std::sort(task_order.begin(), task_order.end(),
              [&](std::size_t a, std::size_t b) {
                return difficulty[a] > difficulty[b];
              });
    std::vector<std::size_t> torus_order(n_tori);
    std::iota(torus_order.begin(), torus_order.end(), 0);
    std::sort(torus_order.begin(), torus_order.end(),
              [&](std::size_t a, std::size_t b) {
                return torus_scores_[a] > torus_scores_[b];
              });

    const double total_rate =
        std::accumulate(torus_rate_.begin(), torus_rate_.end(), 0.0);
    std::vector<std::size_t> quota(n_tori);
    std::size_t assigned = 0;
    for (std::size_t k = 0; k < n_tori; ++k) {
      const std::size_t t = torus_order[k];
      quota[t] = k + 1 == n_tori
                     ? tasks.size() - assigned
                     : static_cast<std::size_t>(std::round(
                           torus_rate_[t] / std::max(total_rate, 1e-12) *
                           static_cast<double>(tasks.size())));
      quota[t] = std::min(quota[t], tasks.size() - assigned);
      assigned += quota[t];
    }

    std::size_t cursor = 0;
    for (std::size_t k = 0; k < n_tori && cursor < tasks.size(); ++k) {
      const std::size_t t = torus_order[k];
      for (std::size_t c = 0; c < quota[t] && cursor < tasks.size(); ++c) {
        task_torus[task_order[cursor++]] = t;
      }
    }
    // Any rounding leftovers land on the fastest torus.
    while (cursor < tasks.size()) {
      task_torus[task_order[cursor++]] = torus_order[0];
    }
  }

  // Execute.
  {
    AQ_TRACE_SPAN("core.infer.execute");
    std::vector<telemetry::QpuShotShare> split;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      math::Rng rng = root.split("exec").split(i);
      split.clear();
      const double p = torus_probability(
          task_torus[i], tasks[i], config_.shots_per_task, rng, &report,
          telemetry != nullptr ? &split : nullptr);
      report.per_task_loss[i] =
          qnn::loss_value(config_.loss, p, tasks[i].label);
      if (telemetry != nullptr) {
        telemetry::AssignmentRecord rec;
        rec.task = i;
        rec.torus = static_cast<int>(task_torus[i]);
        rec.estimated_score = torus_scores_[task_torus[i]];
        rec.warmup_difficulty = difficulty[i];
        rec.realized_loss = report.per_task_loss[i];
        rec.shot_split = split;
        telemetry->on_assignment(rec);
      }
    }
  }

  finalize_report(report);
  return report;
}

InferenceReport batch_based_inference(
    const std::vector<qnn::QnnExecutor>& executors,
    const std::vector<std::vector<double>>& weights,
    const std::vector<InferenceTask>& tasks, const ScheduleConfig& config) {
  if (executors.empty() || weights.size() != executors.size()) {
    throw std::invalid_argument("batch_based_inference: fleet mismatch");
  }
  if (tasks.empty()) {
    throw std::invalid_argument("batch_based_inference: no tasks");
  }
  InferenceReport report;
  report.per_task_loss.resize(tasks.size());
  report.qpu_shots.assign(executors.size(), 0.0);
  report.qpu_busy_us.assign(executors.size(), 0.0);

  // Deal tasks out proportionally to QPU shot rate via largest-remainder
  // round-robin on cumulative deficit.
  std::vector<double> rate(executors.size());
  double total_rate = 0.0;
  for (std::size_t q = 0; q < executors.size(); ++q) {
    rate[q] = executors[q].shot_rate();
    total_rate += rate[q];
  }
  std::vector<double> credit(executors.size(), 0.0);
  math::Rng root(config.seed);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t q = 0; q < executors.size(); ++q) {
      credit[q] += rate[q] / total_rate;
    }
    const std::size_t pick = static_cast<std::size_t>(
        std::max_element(credit.begin(), credit.end()) - credit.begin());
    credit[pick] -= 1.0;

    math::Rng rng = root.split("batch").split(i);
    const double p = executors[pick].sampled_probability(
        tasks[i].features, weights[pick], config.shots_per_task, rng,
        config.trajectories);
    report.per_task_loss[i] =
        qnn::loss_value(config.loss, p, tasks[i].label);
    report.qpu_shots[pick] += static_cast<double>(config.shots_per_task);
    report.qpu_busy_us[pick] += static_cast<double>(config.shots_per_task) *
                                executors[pick].shot_latency_us();
  }

  finalize_report(report);
  return report;
}

InferenceReport ensemble_weighted_inference(
    const std::vector<qnn::QnnExecutor>& executors,
    const std::vector<std::vector<double>>& weights,
    const std::vector<double>& votes,
    const std::vector<InferenceTask>& tasks, const ScheduleConfig& config) {
  if (executors.empty() || weights.size() != executors.size() ||
      votes.size() != executors.size()) {
    throw std::invalid_argument("ensemble_weighted_inference: fleet mismatch");
  }
  if (tasks.empty()) {
    throw std::invalid_argument("ensemble_weighted_inference: no tasks");
  }
  double vote_total = 0.0;
  for (double v : votes) {
    if (v < 0.0) {
      throw std::invalid_argument("ensemble_weighted_inference: bad vote");
    }
    vote_total += v;
  }
  if (vote_total <= 0.0) {
    throw std::invalid_argument("ensemble_weighted_inference: zero votes");
  }

  InferenceReport report;
  report.per_task_loss.resize(tasks.size());
  report.qpu_shots.assign(executors.size(), 0.0);
  report.qpu_busy_us.assign(executors.size(), 0.0);

  math::Rng root(config.seed);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double p = 0.0;
    for (std::size_t q = 0; q < executors.size(); ++q) {
      math::Rng rng = root.split("ensemble").split(i * 131ULL + q);
      const double pq = executors[q].sampled_probability(
          tasks[i].features, weights[q], config.shots_per_task, rng,
          config.trajectories);
      p += votes[q] / vote_total * pq;
      report.qpu_shots[q] += static_cast<double>(config.shots_per_task);
      report.qpu_busy_us[q] += static_cast<double>(config.shots_per_task) *
                               executors[q].shot_latency_us();
    }
    report.per_task_loss[i] =
        qnn::loss_value(config.loss, p, tasks[i].label);
  }

  finalize_report(report);
  return report;
}

}  // namespace arbiterq::core
