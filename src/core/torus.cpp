#include "arbiterq/core/torus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "arbiterq/math/dft.hpp"
#include "arbiterq/math/mds.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::core {

std::size_t TorusPartition::torus_of(int q) const {
  for (std::size_t t = 0; t < tori.size(); ++t) {
    if (std::find(tori[t].begin(), tori[t].end(), q) != tori[t].end()) {
      return t;
    }
  }
  throw std::out_of_range("TorusPartition::torus_of: unknown QPU");
}

int default_torus_count(std::size_t num_qpus) {
  return std::max(1, static_cast<int>(num_qpus / 3));
}

TorusPartition build_torus_partition(
    const std::vector<BehavioralVector>& behavioral,
    const std::vector<std::vector<double>>& model_vectors, int num_tori) {
  const std::size_t n = behavioral.size();
  if (n == 0 || model_vectors.size() != n) {
    throw std::invalid_argument("build_torus_partition: input mismatch");
  }
  if (num_tori <= 0) num_tori = default_torus_count(n);
  if (static_cast<std::size_t>(num_tori) > n) {
    throw std::invalid_argument("build_torus_partition: more tori than QPUs");
  }
  AQ_TRACE_SPAN("core.torus.partition");
  AQ_COUNTER_ADD("core.torus.builds", 1);
  AQ_GAUGE_SET("core.torus.count", static_cast<double>(num_tori));

  TorusPartition out;

  std::vector<std::vector<double>> b_points;
  b_points.reserve(n);
  for (const auto& bv : behavioral) b_points.push_back(bv.concatenated());
  out.behavioral_coords = math::mds_embed_1d(
      math::pairwise_distances(b_points));
  out.model_coords =
      math::mds_embed_1d(math::pairwise_distances(model_vectors));

  // Degenerate fleets (n < 3, or a flat behavioral axis) skip the DFT and
  // fall back to a single-period torus.
  const auto [lo, hi] = std::minmax_element(out.behavioral_coords.begin(),
                                            out.behavioral_coords.end());
  const double span = *hi - *lo;
  if (n >= 3 && span > 1e-15) {
    const auto cycle = math::dominant_cycle(out.behavioral_coords,
                                            out.model_coords, n);
    out.cycle_period = cycle.period;
    out.dominant_frequency = cycle.frequency_index;
  } else {
    out.cycle_period = span > 0.0 ? span : 1.0;
    out.dominant_frequency = 1;
  }

  // Wrap onto the torus circle.
  out.phase.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double offset = out.behavioral_coords[i] - *lo;
    const double m = std::fmod(offset, out.cycle_period);
    out.phase[i] = m / out.cycle_period;
  }

  // Equidistant partition: sort by phase, cut into near-equal chunks
  // (larger chunks first, matching Table IV's {4,3,3} style splits).
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double pa = out.phase[static_cast<std::size_t>(a)];
    const double pb = out.phase[static_cast<std::size_t>(b)];
    return pa != pb ? pa < pb : a < b;
  });
  out.tori.resize(static_cast<std::size_t>(num_tori));
  std::size_t cursor = 0;
  for (int t = 0; t < num_tori; ++t) {
    const std::size_t remaining_tori = static_cast<std::size_t>(num_tori - t);
    const std::size_t chunk =
        (n - cursor + remaining_tori - 1) / remaining_tori;
    for (std::size_t k = 0; k < chunk; ++k) {
      out.tori[static_cast<std::size_t>(t)].push_back(order[cursor++]);
    }
  }
  return out;
}

TorusPartition repartition_alive(
    const std::vector<BehavioralVector>& behavioral,
    const std::vector<std::vector<double>>& model_vectors,
    const std::vector<int>& alive, int num_tori) {
  if (alive.empty()) {
    throw std::invalid_argument("repartition_alive: no survivors");
  }
  if (behavioral.size() != model_vectors.size()) {
    throw std::invalid_argument("repartition_alive: input mismatch");
  }
  std::vector<BehavioralVector> sub_b;
  std::vector<std::vector<double>> sub_m;
  sub_b.reserve(alive.size());
  sub_m.reserve(alive.size());
  for (int q : alive) {
    if (q < 0 || static_cast<std::size_t>(q) >= behavioral.size()) {
      throw std::invalid_argument("repartition_alive: unknown QPU");
    }
    sub_b.push_back(behavioral[static_cast<std::size_t>(q)]);
    sub_m.push_back(model_vectors[static_cast<std::size_t>(q)]);
  }
  if (num_tori <= 0) num_tori = default_torus_count(alive.size());
  num_tori = std::min<int>(num_tori, static_cast<int>(alive.size()));
  AQ_COUNTER_ADD("core.torus.repartitions", 1);
  TorusPartition out = build_torus_partition(sub_b, sub_m, num_tori);
  // Map the subset indices back to global QPU ids.
  for (auto& torus : out.tori) {
    for (int& q : torus) q = alive[static_cast<std::size_t>(q)];
  }
  return out;
}

TorusPartition repartition_torus(const TorusPartition& prev, int dead_qpu) {
  const std::size_t victim_torus = prev.torus_of(dead_qpu);  // throws if
                                                             // unknown
  TorusPartition out = prev;
  std::vector<int>& members = out.tori[victim_torus];
  members.erase(std::remove(members.begin(), members.end(), dead_qpu),
                members.end());
  if (members.empty()) {
    // The torus died with its last member: drop it (indices of later
    // tori shift down, which routing epochs absorb deterministically).
    out.tori.erase(out.tori.begin() +
                   static_cast<std::ptrdiff_t>(victim_torus));
  }
  if (out.tori.empty()) {
    throw std::invalid_argument("repartition_torus: no survivors");
  }
  AQ_COUNTER_ADD("core.torus.scoped_repartitions", 1);
  return out;
}

}  // namespace arbiterq::core
