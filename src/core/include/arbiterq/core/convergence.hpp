#pragma once
// Convergence detection over a per-epoch loss curve: the metric pair
// Table I reports (convergence epoch, converged loss).
//
// Definition (DESIGN.md): smooth the curve with a centered moving
// average; the plateau is the mean smoothed loss of the last `tail`
// epochs; the curve "converged" at the first in-band epoch from which at
// least `sustain_fraction` of the remaining smoothed losses stay within
//     plateau + max(abs_tol, range_frac * (initial - plateau)) + wobble
// (wobble = the plateau's own residual std). A noisy curve that keeps
// bouncing above the band converges late; a curve that never improves
// (initial <= plateau) never converges and reports the full epoch count
// — the Fig. 2a "all-sharing diverges" situation.

#include <cstddef>
#include <vector>

namespace arbiterq::core {

struct Convergence {
  /// 1-based epoch index (matches the paper's counting); equal to the
  /// curve length if the curve never settles.
  int epoch = 0;
  /// Converged loss: mean of the last `tail` raw losses.
  double loss = 0.0;
};

struct ConvergenceConfig {
  /// Width of the acceptance band as a fraction of total improvement.
  double range_frac = 0.10;
  /// Absolute floor of the band (loss units).
  double abs_tol = 2e-3;
  /// Fraction of the remaining epochs that must sit inside the band for
  /// an epoch to count as converged — tolerates one transient excursion
  /// without rewarding curves that keep leaving the band.
  double sustain_fraction = 0.85;
  std::size_t smooth_window = 9;
  std::size_t tail = 5;
};

Convergence detect_convergence(const std::vector<double>& losses,
                               const ConvergenceConfig& cfg = {});

}  // namespace arbiterq::core
