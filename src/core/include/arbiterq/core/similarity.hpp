#pragma once
// Similarity-aware grouping (paper §III-B):
//   dist(i,j) = ||v_b^i - v_b^j||_2 / length(v_b)        (Eq. 1)
//   sim(i,j)  = exp(-kappa * dist(i,j))
// QPUs whose distance falls below a threshold form a sharing group;
// groups are the connected components of the thresholded distance graph,
// so "similar to a common neighbor" chains into one group.

#include <vector>

#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/math/matrix.hpp"

namespace arbiterq::core {

/// Eq. 1 — behavioral vectors must have equal lengths.
double behavioral_distance(const BehavioralVector& a,
                           const BehavioralVector& b);

/// sim = exp(-kappa * dist); kappa is the paper's hyperparameter
/// (20000 in §V-A).
double similarity_from_distance(double dist, double kappa);

class SimilarityGraph {
 public:
  SimilarityGraph(const std::vector<BehavioralVector>& vectors,
                  double kappa);

  std::size_t size() const noexcept { return n_; }
  double distance(std::size_t i, std::size_t j) const {
    return dist_(i, j);
  }
  double similarity(std::size_t i, std::size_t j) const {
    return sim_(i, j);
  }
  const math::Matrix& distance_matrix() const noexcept { return dist_; }
  const math::Matrix& similarity_matrix() const noexcept { return sim_; }

  /// Connected components under dist <= threshold; each component sorted,
  /// components ordered by smallest member.
  std::vector<std::vector<int>> groups(double threshold) const;

  /// Peers of node i in its group (excluding i itself).
  std::vector<int> peers(int i, double threshold) const;

 private:
  std::size_t n_;
  math::Matrix dist_;
  math::Matrix sim_;
};

}  // namespace arbiterq::core
