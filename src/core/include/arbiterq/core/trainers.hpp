#pragma once
// The four distributed training strategies compared in Table I / Fig. 5:
//
//  * single-node  — one QPU trains alone; its weights are deployed
//    everywhere (no parallelism, no heterogeneity handling);
//  * all-sharing  — one shared weight vector, gradient = plain average
//    over the fleet (the straw-man of Fig. 2a);
//  * EQC          — one shared weight vector, gradient = noise-weighted
//    vote (weight ~ 1/average device error), after Stein et al.;
//  * ArbiterQ     — a personalized weight vector per QPU; each node's
//    update blends its own gradient with peers' gradients scaled by the
//    behavioral similarity sim(i,j) = exp(-kappa*dist), restricted to its
//    threshold group (paper §III-B).
//
// Every node draws its own minibatch each epoch, so gradient averaging
// within a group genuinely reduces gradient noise — the mechanism behind
// the convergence speedup.
//
// The per-epoch metric matches Table I's footnote: the test-set loss
// averaged across all QPUs, each QPU evaluating the weights it would
// deploy (its own for ArbiterQ; the shared, central or single-node-
// trained ones otherwise), without any inference scheduling.

#include <cstdint>
#include <string>
#include <vector>

#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/core/convergence.hpp"
#include "arbiterq/core/similarity.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/qpu.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/telemetry/sink.hpp"

namespace arbiterq::core {

enum class Strategy { kSingleNode, kAllSharing, kEqc, kArbiterQ };

std::string strategy_name(Strategy s);

struct TrainConfig {
  qnn::LossKind loss = qnn::LossKind::kMse;
  double learning_rate = 0.8;
  int epochs = 100;
  std::size_t batch_size = 4;
  /// Similarity sharpness. The paper sets 20000 (§V-A); our Eq. 1
  /// distances come out ~10x larger than theirs (vector length and gate
  /// error normalization differ), so 2000 spans the same effective
  /// similarity range. Both are just points on the same ablation axis
  /// (bench_ablation_sharing sweeps it).
  double kappa = 2000.0;
  /// Grouping threshold on Eq. 1 distances; the default admits peers with
  /// sim >= ~0.1 under the default kappa.
  double distance_threshold = 1.2e-3;
  /// Standard deviation of the shot-noise on each gradient component for
  /// a batch-size-1 estimate. On hardware, gradients come from
  /// parameter-shift with a finite shot budget, so every component
  /// carries sampling noise ~1/sqrt(shots); a node's effective noise is
  /// this value / sqrt(batch_size), and gradient *sharing* divides it
  /// further by ~sqrt(group size) — the variance-reduction mechanism
  /// behind the paper's convergence speedups. 0 disables (exact
  /// gradients).
  double gradient_shot_noise = 0.25;
  /// Depolarizing error mitigation on every executor (see
  /// qnn::ExecutorOptions) — required when the compiled circuit's
  /// survival probability is too small to carry gradient signal
  /// (the 10-layer HMDB51 model).
  bool error_mitigation = false;
  /// Gradient pruning (after Wang et al., QOC): keep only the largest
  /// |g| fraction of each node's gradient components and zero the rest.
  /// On hardware this saves the pruned components' circuit executions in
  /// later epochs; here it is an accuracy/epoch trade-off knob.
  /// 0 disables, 0.5 keeps the top half, etc.
  double gradient_prune_ratio = 0.0;
  /// Device instability (the paper's "frequent online/offline"): each
  /// epoch every node is independently offline with this probability.
  /// Offline nodes contribute no gradient and keep their weights; the
  /// single-node strategy stalls entirely when its device is offline.
  double offline_probability = 0.0;
  /// Temporal calibration drift (paper §II-B): every `drift_interval`
  /// epochs each device's coherent biases drift by N(0, drift_sigma)
  /// radians. 0 interval (or sigma) disables. The drifted executors live
  /// only inside the train() call; the trainer's compiled artifacts are
  /// untouched.
  double drift_sigma = 0.0;
  int drift_interval = 0;
  std::uint64_t seed = 42;
  /// Parallel execution policy for the per-QPU epoch work: minibatch
  /// gradient evaluation and the per-node test-loss sweep fan out across
  /// the shared thread pool (each node already owns its executor, batch
  /// and split RNG stream), while the similarity-weighted gradient merge
  /// and the weight updates stay behind a serial barrier — epoch results
  /// are bit-identical to the sequential schedule for any thread count.
  /// num_threads: 1 = serial (default), 0 = auto (ARBITERQ_THREADS env
  /// var, else hardware_concurrency), N = cap at N-way.
  exec::ExecPolicy exec = {};
  /// Execute every node through a compiled ExecPlan (see
  /// qnn::ExecutorOptions::use_plan). Bit-identical to the naive path —
  /// training curves do not change, only wall-clock. Default on; exposed
  /// for A/B benchmarking.
  bool use_exec_plans = true;
  /// Route plan execution through the sample-batched forward (see
  /// qnn::ExecutorOptions::batched_forward): dataset losses and adjoint
  /// gradients evaluate whole sample blocks per register sweep.
  /// Bit-identical under strict reproducibility; exposed for A/B
  /// benchmarking. No effect when use_exec_plans is false.
  bool batched_forward = true;
  /// Optional health hook (non-owning; must outlive train()): receives
  /// the same per-(epoch, QPU) record stream as train()'s telemetry
  /// argument, in the same serial order. Lets a standing observer — e.g.
  /// monitor::FleetHealthMonitor — ride along on every train() call
  /// without threading a second sink through each call site. Purely
  /// observational: training results are identical with or without it.
  telemetry::TrainingTelemetry* monitor = nullptr;
};

struct TrainResult {
  Strategy strategy = Strategy::kSingleNode;
  /// Mean test loss across QPUs after each epoch.
  std::vector<double> epoch_test_loss;
  /// Gradient messages exchanged over the whole run: 0 for single-node;
  /// 2n per epoch for the centralized strategies (n uploads + n
  /// broadcasts); sum of online peer links for ArbiterQ. The
  /// communication price of each scheme.
  std::size_t gradient_messages = 0;
  /// Deployed weights per QPU after the last epoch (identical vectors for
  /// the shared-weight strategies).
  std::vector<std::vector<double>> weights;
  Convergence convergence;
};

class DistributedTrainer {
 public:
  /// Compiles the model on every device and builds behavioral vectors +
  /// the similarity graph up front.
  DistributedTrainer(const qnn::QnnModel& model,
                     std::vector<device::Qpu> fleet, TrainConfig config);

  std::size_t fleet_size() const noexcept { return executors_.size(); }
  const TrainConfig& config() const noexcept { return config_; }
  const std::vector<qnn::QnnExecutor>& executors() const noexcept {
    return executors_;
  }
  const std::vector<BehavioralVector>& behavioral_vectors() const noexcept {
    return behavioral_;
  }
  const SimilarityGraph& similarity() const noexcept { return similarity_; }
  /// Sharing groups under the configured threshold.
  std::vector<std::vector<int>> sharing_groups() const;

  /// `telemetry` (optional) receives one EpochQpuRecord per (epoch, QPU):
  /// per-node test loss, gradient norm, similarity-group membership,
  /// online/churn state and a parameter-shift shot estimate.
  TrainResult train(Strategy strategy, const data::EncodedSplit& split,
                    telemetry::TrainingTelemetry* telemetry = nullptr) const;

  /// EQC voting weights (normalized inverse average device error).
  std::vector<double> eqc_vote_weights() const;

 private:
  std::vector<double> initial_weights() const;
  double fleet_test_loss(const data::EncodedSplit& split,
                         const std::vector<std::vector<double>>& w) const;
  double node_test_loss(const data::EncodedSplit& split, std::size_t node,
                        const std::vector<double>& w) const;

  TrainConfig config_;
  std::vector<qnn::QnnExecutor> executors_;
  std::vector<BehavioralVector> behavioral_;
  SimilarityGraph similarity_;
};

}  // namespace arbiterq::core
