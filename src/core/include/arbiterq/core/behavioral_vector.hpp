#pragma once
// Behavioral vectorization (paper §III-A): a uniform representation of
// *how a QNN circuit behaves once implemented on a specific QPU*.
//
//  * contextual vector — element i is the cumulative executional error of
//    the basis gates that logical gate i decomposes into:
//        v_c(i) = 1 - prod_j (1 - e_ij)
//  * topological vector — element i is the cumulative error of the
//    routing SWAPs inserted on behalf of logical gate i (0 for gates that
//    needed no routing); same length as the contextual vector.
//
// Gate errors use e = 1 - exp(-t/tau) * f (device::Qpu::gate_error).
// Elements are ordered by the execution sequence of the original QNN
// circuit — the transpiler's logical_id tags carry that ordering through
// routing and decomposition.

#include <string>
#include <vector>

#include "arbiterq/device/qpu.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq::core {

struct BehavioralVector {
  std::vector<double> contextual;
  std::vector<double> topological;

  std::size_t length() const noexcept { return contextual.size(); }

  /// Contextual then topological, the uniform representation distances
  /// are measured in (Eq. 1 divides by this concatenated length).
  std::vector<double> concatenated() const;

  std::string to_string() const;
};

/// Vectorize one compiled circuit on its device. `logical_size` is the
/// gate count of the original (pre-transpile) QNN circuit.
BehavioralVector vectorize(const transpile::CompiledCircuit& compiled,
                           const device::Qpu& qpu, std::size_t logical_size);

}  // namespace arbiterq::core
