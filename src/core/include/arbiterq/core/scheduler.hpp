#pragma once
// Inference scheduling (paper §IV-B and the Fig. 2b baseline).
//
// Shot-oriented (ArbiterQ): a warm-up pass sketches each task's
// difficulty; tasks are assigned greedily — hard tasks to the most
// accurate torus — under per-torus quotas proportional to torus
// throughput; inside a torus each task's shots are split across all
// members proportionally to their shot rate and the member predictions
// are shot-weighted averaged (the noise-compensation step).
//
// Batch-based (baseline, what EQC uses): every task runs entirely on a
// single QPU, tasks dealt out proportionally to QPU throughput.
//
// Both report mean test loss, the loss spread, per-QPU shot counts and
// estimated busy time (workload balance).

#include <cstdint>
#include <vector>

#include "arbiterq/core/torus.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/telemetry/sink.hpp"

namespace arbiterq::core {

struct InferenceTask {
  std::vector<double> features;  ///< encoded, radians
  int label = 0;
};

struct ScheduleConfig {
  int shots_per_task = 256;
  int warmup_shots = 32;
  int trajectories = 16;
  qnn::LossKind loss = qnn::LossKind::kMse;
  std::uint64_t seed = 99;
};

struct InferenceReport {
  double mean_loss = 0.0;
  /// Sample standard deviation of per-task losses (Fig. 2b metric).
  double loss_stddev = 0.0;
  std::vector<double> per_task_loss;
  /// Shots executed per QPU.
  std::vector<double> qpu_shots;
  /// Estimated busy time per QPU in microseconds.
  std::vector<double> qpu_busy_us;
  /// max(busy) / mean(busy) over QPUs that did any work; 1.0 = balanced.
  double workload_imbalance = 1.0;
  /// Wall-clock of the whole batch: the busiest QPU's time (us).
  double makespan_us = 0.0;
  /// Tasks completed per second at that makespan.
  double throughput_tasks_per_s = 0.0;
};

/// Build inference tasks from an encoded feature set.
std::vector<InferenceTask> make_tasks(
    const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels);

class ShotOrientedScheduler {
 public:
  /// `executors` and `weights` are indexed by QPU; `weights[i]` is the
  /// (personalized) model QPU i deploys.
  ShotOrientedScheduler(const std::vector<qnn::QnnExecutor>& executors,
                        std::vector<std::vector<double>> weights,
                        TorusPartition partition, ScheduleConfig config);

  const TorusPartition& partition() const noexcept { return partition_; }
  /// Accuracy score per torus (higher = cleaner members), the greedy
  /// assignment's sort key.
  const std::vector<double>& torus_scores() const noexcept {
    return torus_scores_;
  }

  /// `telemetry` (optional) receives one AssignmentRecord per task:
  /// torus chosen, per-QPU shot split, the estimated torus score the
  /// greedy assignment sorted on, and the realized loss.
  InferenceReport run(const std::vector<InferenceTask>& tasks,
                      telemetry::TrainingTelemetry* telemetry = nullptr) const;

 private:
  double torus_probability(
      std::size_t torus, const InferenceTask& task, int shots,
      math::Rng& rng, InferenceReport* report,
      std::vector<telemetry::QpuShotShare>* split = nullptr) const;

  const std::vector<qnn::QnnExecutor>& executors_;
  std::vector<std::vector<double>> weights_;
  TorusPartition partition_;
  ScheduleConfig config_;
  std::vector<double> torus_scores_;
  std::vector<double> torus_rate_;  ///< summed member shot rates
};

/// Baseline: batch-based inference. `weights[i]` is what QPU i deploys
/// (pass identical rows to model EQC's central model).
InferenceReport batch_based_inference(
    const std::vector<qnn::QnnExecutor>& executors,
    const std::vector<std::vector<double>>& weights,
    const std::vector<InferenceTask>& tasks, const ScheduleConfig& config);

/// Reference: full ensemble inference a la EQC — every task runs its
/// whole shot budget on *every* QPU and the predictions are combined
/// with the given voting weights (normalized internally). The most
/// accurate and least efficient point of the design space: the fleet
/// does |fleet| times the work of the other schedulers.
InferenceReport ensemble_weighted_inference(
    const std::vector<qnn::QnnExecutor>& executors,
    const std::vector<std::vector<double>>& weights,
    const std::vector<double>& votes,
    const std::vector<InferenceTask>& tasks, const ScheduleConfig& config);

}  // namespace arbiterq::core
