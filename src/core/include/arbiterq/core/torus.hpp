#pragma once
// QPU torus construction (paper §IV-A). Goal: partition the fleet into
// sub-tori whose members are mutually *dissimilar*, so their noise
// biases compensate when a task's shots are split across a torus.
//
// Pipeline:
//  1. MDS reduces the behavioral-vector space and the model-vector
//     (weight) space to 1-D sequences {b_j} and {m_t} that preserve the
//     pairwise distances (Saeed et al.).
//  2. A non-uniform DFT of the model sequence sampled at the behavioral
//     positions (Eq. 2) finds the dominant frequency; the cycle period is
//     T = span({b_j}) / argmax_k |F_m[k]| (Eq. 3).
//  3. The behavioral sequence is wrapped onto a circle of circumference
//     T: QPUs whose b-coordinates differ by a multiple of T land at the
//     same phase — and those are exactly the "distant but model-similar"
//     nodes MDS alone cannot separate.
//  4. Equidistant partition along the circle: sort by phase, cut into
//     near-equal contiguous chunks. Each chunk strings together QPUs from
//     different periods, i.e. with low behavioral similarity.

#include <vector>

#include "arbiterq/core/behavioral_vector.hpp"

namespace arbiterq::core {

struct TorusPartition {
  /// Cycle period T of Eq. 3.
  double cycle_period = 0.0;
  /// argmax frequency index of the NUDFT (>= 1).
  std::size_t dominant_frequency = 0;
  /// 1-D MDS coordinates, indexed by QPU.
  std::vector<double> behavioral_coords;
  std::vector<double> model_coords;
  /// Phase in [0, 1) on the torus circle, indexed by QPU.
  std::vector<double> phase;
  /// QPU indices per sub-torus (each sorted by phase).
  std::vector<std::vector<int>> tori;

  /// Torus containing QPU q; throws if q is unknown.
  std::size_t torus_of(int q) const;
};

/// Default torus count used by the Table IV experiments: one torus per
/// ~3 QPUs ({1,2,3}->1, {6}->2, {8}->2, {10}->3).
int default_torus_count(std::size_t num_qpus);

/// Build the partition from per-QPU behavioral vectors and model vectors
/// (deployed weights). num_tori <= 0 selects default_torus_count.
TorusPartition build_torus_partition(
    const std::vector<BehavioralVector>& behavioral,
    const std::vector<std::vector<double>>& model_vectors, int num_tori = 0);

/// Degradation-time rebuild: partition only the surviving fleet subset
/// (`alive` holds global QPU indices into `behavioral`/`model_vectors`,
/// ascending). The returned partition's `tori` contain *global* QPU
/// indices again, so schedulers keep addressing the full fleet; the
/// coordinate/phase fields are indexed by position in `alive`.
/// num_tori <= 0 selects default_torus_count(alive.size()); an explicit
/// request is clamped to the survivor count. Throws when `alive` is
/// empty or names an unknown QPU.
TorusPartition repartition_alive(
    const std::vector<BehavioralVector>& behavioral,
    const std::vector<std::vector<double>>& model_vectors,
    const std::vector<int>& alive, int num_tori = 0);

/// Scoped degradation-time rebuild: remove `dead_qpu` from the one torus
/// that contains it, leaving every other torus byte-identical to `prev`.
/// Survivors keep their phase order (they were phase-sorted when the
/// partition was built, and removing a member preserves that order), so
/// the rebuild is O(|torus|), deterministic, and — unlike
/// repartition_alive — contained: a dropout in one torus never reshuffles
/// the rest of the fleet, which is what lets a sharded serving runtime
/// repartition one shard while its siblings keep draining. A torus that
/// loses its last member is dropped. Throws when `dead_qpu` is not a
/// member, or when removing it would leave no tori at all.
TorusPartition repartition_torus(const TorusPartition& prev, int dead_qpu);

}  // namespace arbiterq::core
