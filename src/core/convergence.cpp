#include "arbiterq/core/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arbiterq/math/stats.hpp"

namespace arbiterq::core {

Convergence detect_convergence(const std::vector<double>& losses,
                               const ConvergenceConfig& cfg) {
  if (losses.empty()) {
    throw std::invalid_argument("detect_convergence: empty loss curve");
  }
  const auto smoothed = math::moving_average(losses, cfg.smooth_window);

  const std::size_t tail = std::min(cfg.tail, losses.size());
  double plateau = 0.0;
  double raw_tail = 0.0;
  for (std::size_t k = losses.size() - tail; k < losses.size(); ++k) {
    plateau += smoothed[k];
    raw_tail += losses[k];
  }
  plateau /= static_cast<double>(tail);
  raw_tail /= static_cast<double>(tail);

  Convergence out;
  out.loss = raw_tail;

  const double initial = smoothed.front();
  const double improvement = initial - plateau;
  if (improvement <= cfg.abs_tol) {
    // Never learned (or got worse): report the full epoch count.
    out.epoch = static_cast<int>(losses.size());
    return out;
  }

  // Widen the band by the plateau's own residual wobble (smoothed-curve
  // std over the final quarter), so a strategy is not declared
  // unconverged merely for bouncing at its noise floor.
  const std::size_t quarter = std::max<std::size_t>(2, smoothed.size() / 4);
  std::vector<double> plateau_region(smoothed.end() -
                                         static_cast<std::ptrdiff_t>(quarter),
                                     smoothed.end());
  const double wobble = math::stddev(plateau_region);
  const double band =
      plateau + std::max(cfg.abs_tol, cfg.range_frac * improvement) +
      1.5 * wobble;
  // First in-band epoch from which at least sustain_fraction of the
  // remaining smoothed losses stay in the band (suffix scan).
  const std::size_t len = smoothed.size();
  std::vector<std::size_t> in_band_suffix(len + 1, 0);
  for (std::size_t e = len; e-- > 0;) {
    in_band_suffix[e] =
        in_band_suffix[e + 1] + (smoothed[e] <= band ? 1U : 0U);
  }
  std::size_t epoch = len - 1;
  for (std::size_t e = 0; e < len; ++e) {
    const double fraction = static_cast<double>(in_band_suffix[e]) /
                            static_cast<double>(len - e);
    if (smoothed[e] <= band && fraction >= cfg.sustain_fraction) {
      epoch = e;
      break;
    }
  }
  out.epoch = static_cast<int>(epoch) + 1;
  return out;
}

}  // namespace arbiterq::core
