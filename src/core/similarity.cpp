#include "arbiterq/core/similarity.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "arbiterq/math/stats.hpp"

namespace arbiterq::core {

double behavioral_distance(const BehavioralVector& a,
                           const BehavioralVector& b) {
  const auto va = a.concatenated();
  const auto vb = b.concatenated();
  if (va.size() != vb.size() || va.empty()) {
    throw std::invalid_argument("behavioral_distance: length mismatch");
  }
  return math::l2_distance(va, vb) / static_cast<double>(va.size());
}

double similarity_from_distance(double dist, double kappa) {
  if (dist < 0.0 || kappa < 0.0) {
    throw std::invalid_argument("similarity_from_distance: negative input");
  }
  return std::exp(-kappa * dist);
}

SimilarityGraph::SimilarityGraph(
    const std::vector<BehavioralVector>& vectors, double kappa)
    : n_(vectors.size()), dist_(vectors.size(), vectors.size()),
      sim_(vectors.size(), vectors.size()) {
  if (vectors.empty()) {
    throw std::invalid_argument("SimilarityGraph: no vectors");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    sim_(i, i) = 1.0;
    for (std::size_t j = i + 1; j < n_; ++j) {
      const double d = behavioral_distance(vectors[i], vectors[j]);
      dist_(i, j) = dist_(j, i) = d;
      const double s = similarity_from_distance(d, kappa);
      sim_(i, j) = sim_(j, i) = s;
    }
  }
}

std::vector<std::vector<int>> SimilarityGraph::groups(
    double threshold) const {
  // Union-find over the thresholded graph.
  std::vector<int> parent(n_);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = i + 1; j < n_; ++j) {
      if (dist_(i, j) <= threshold) {
        parent[static_cast<std::size_t>(find(static_cast<int>(j)))] =
            find(static_cast<int>(i));
      }
    }
  }
  std::vector<std::vector<int>> out;
  std::vector<int> root_to_group(n_, -1);
  for (std::size_t i = 0; i < n_; ++i) {
    const int r = find(static_cast<int>(i));
    if (root_to_group[static_cast<std::size_t>(r)] < 0) {
      root_to_group[static_cast<std::size_t>(r)] =
          static_cast<int>(out.size());
      out.emplace_back();
    }
    out[static_cast<std::size_t>(root_to_group[static_cast<std::size_t>(r)])]
        .push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> SimilarityGraph::peers(int i, double threshold) const {
  const auto all = groups(threshold);
  for (const auto& g : all) {
    if (std::find(g.begin(), g.end(), i) != g.end()) {
      std::vector<int> peers;
      for (int m : g) {
        if (m != i) peers.push_back(m);
      }
      return peers;
    }
  }
  return {};
}

}  // namespace arbiterq::core
