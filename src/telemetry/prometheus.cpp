#include "arbiterq/telemetry/prometheus.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "arbiterq/telemetry/trace.hpp"  // safe_label

namespace arbiterq::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

bool valid_name_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

/// HELP text may not contain raw newlines or backslashes (0.0.4 escaping
/// rules). Internal names are tame, but metric names can embed
/// user-supplied labels (serving tenants), so run the full sanitizer:
/// control characters and invalid UTF-8 become '_' (safe_label), then
/// the two characters the exposition format escapes get their sequences.
std::string help_escape(const std::string& s) {
  const std::string clean = safe_label(s);
  std::string out;
  out.reserve(clean.size());
  for (char c : clean) {
    if (c == '\\') out += "\\\\";
    else out += c;
  }
  return out;
}

void family_header(std::string& out, const std::string& prom_name,
                   const char* type, const std::string& original) {
  out += "# HELP " + prom_name + " ArbiterQ " + std::string(type) +
         " '" + help_escape(original) + "'\n";
  out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "arbiterq_";
  out.reserve(out.size() + name.size());
  for (char c : name) out += valid_name_char(c) ? c : '_';
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    const std::string n = prometheus_name(c.name) + "_total";
    family_header(out, n, "counter", c.name);
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string n = prometheus_name(g.name);
    family_header(out, n, "gauge", g.name);
    out += n + " " + fmt_double(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string n = prometheus_name(h.name);
    family_header(out, n, "histogram", h.name);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      cumulative += h.bucket_counts[b];
      const std::string le = b < h.upper_bounds.size()
                                 ? fmt_double(h.upper_bounds[b])
                                 : std::string("+Inf");
      out += n + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += n + "_sum " + fmt_double(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

void write_prometheus(const std::string& path,
                      const MetricsSnapshot& snapshot) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_prometheus: cannot open " + path);
  }
  os << prometheus_text(snapshot);
  os.flush();
  if (!os) {
    throw std::runtime_error("write_prometheus: write failed for " + path);
  }
}

}  // namespace arbiterq::telemetry
