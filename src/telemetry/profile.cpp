#include "arbiterq/telemetry/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "arbiterq/report/jsonl.hpp"

namespace arbiterq::telemetry {

TraceProfile TraceProfile::from_events(
    const std::vector<TraceEvent>& events) {
  TraceProfile profile;
  profile.total_events_ = events.size();

  // Self time: start every span at its inclusive duration, then walk the
  // events once subtracting each child's duration from its parent. The
  // ring may have evicted a child while keeping the (later-recorded)
  // parent, in which case the parent's self time stays conservatively
  // high; a surviving child always finds its parent (completion-order
  // invariant) unless that parent never closed before the snapshot.
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    index.emplace(events[i].id, i);
  }
  std::vector<std::int64_t> self(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    self[i] = static_cast<std::int64_t>(events[i].duration_ns);
  }
  for (const TraceEvent& e : events) {
    if (e.parent_id == 0) continue;
    const auto it = index.find(e.parent_id);
    if (it == index.end()) continue;  // parent dropped or still open
    self[it->second] -= static_cast<std::int64_t>(e.duration_ns);
  }

  std::map<std::string, SpanStats> by_name;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    SpanStats& s = by_name[e.name];
    if (s.count == 0) {
      s.name = e.name;
      s.min_ns = e.duration_ns;
      s.max_ns = e.duration_ns;
    }
    ++s.count;
    s.total_ns += e.duration_ns;
    // A clock-granularity child can nominally outlast its parent; clamp
    // instead of wrapping the unsigned accumulator.
    s.self_ns += static_cast<std::uint64_t>(std::max<std::int64_t>(
        self[i], 0));
    s.min_ns = std::min(s.min_ns, e.duration_ns);
    s.max_ns = std::max(s.max_ns, e.duration_ns);
  }

  profile.rows_.reserve(by_name.size());
  for (auto& [name, stats] : by_name) profile.rows_.push_back(stats);
  std::sort(profile.rows_.begin(), profile.rows_.end(),
            [](const SpanStats& a, const SpanStats& b) {
              if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
              return a.name < b.name;
            });
  return profile;
}

std::string TraceProfile::to_table_string() const {
  std::size_t name_width = 4;
  for (const SpanStats& s : rows_) {
    name_width = std::max(name_width, s.name.size());
  }
  const auto ms = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e6;
  };
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%-*s %8s %12s %12s %12s %12s %12s\n",
                static_cast<int>(name_width), "span", "count", "total_ms",
                "self_ms", "mean_ms", "min_ms", "max_ms");
  out += buf;
  for (const SpanStats& s : rows_) {
    std::snprintf(buf, sizeof buf,
                  "%-*s %8llu %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                  static_cast<int>(name_width), s.name.c_str(),
                  static_cast<unsigned long long>(s.count), ms(s.total_ns),
                  ms(s.self_ns), s.mean_ns() / 1e6, ms(s.min_ns),
                  ms(s.max_ns));
    out += buf;
  }
  return out;
}

report::CsvTable profile_csv(const TraceProfile& profile) {
  report::CsvTable table({"name", "count", "total_ns", "self_ns",
                          "mean_ns", "min_ns", "max_ns"});
  char buf[32];
  for (const SpanStats& s : profile.rows()) {
    std::snprintf(buf, sizeof buf, "%.10g", s.mean_ns());
    table.add_row({s.name, std::to_string(s.count),
                   std::to_string(s.total_ns), std::to_string(s.self_ns),
                   std::string(buf), std::to_string(s.min_ns),
                   std::to_string(s.max_ns)});
  }
  return table;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Hashed 64-bit thread ids → small ordinal lanes, assigned in order of
  // first appearance so the mapping is a pure function of the snapshot.
  // Flow-scoped events (flow_id != 0, the serving runtime's per-job
  // traces) get their own lanes after the thread lanes: every span of
  // one job lands in one named lane whatever thread recorded it.
  std::unordered_map<std::uint64_t, int> tid_of;
  std::vector<std::uint64_t> thread_order;
  std::unordered_map<std::uint64_t, int> flow_lane_of;
  std::vector<const TraceEvent*> flow_order;  ///< first event per flow
  for (const TraceEvent& e : events) {
    if (e.flow_id != 0) {
      if (flow_lane_of.emplace(e.flow_id,
                               static_cast<int>(flow_order.size()))
              .second) {
        flow_order.push_back(&e);
      }
      continue;
    }
    if (tid_of.emplace(e.thread_id, static_cast<int>(thread_order.size()))
            .second) {
      thread_order.push_back(e.thread_id);
    }
  }
  const int flow_base = static_cast<int>(thread_order.size());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[128];
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  for (std::size_t t = 0; t < thread_order.size(); ++t) {
    comma();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"thread-%zu\"}}",
                  static_cast<int>(t), t);
    out += buf;
  }
  for (std::size_t f = 0; f < flow_order.size(); ++f) {
    comma();
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"",
                  flow_base + static_cast<int>(f));
    out += buf;
    // Belt and braces: the producer should have run safe_label already,
    // but a hostile flow_label must not be able to break the JSON.
    std::string label = safe_label(flow_order[f]->flow_label);
    if (label.empty()) {
      label = "flow-" + std::to_string(flow_order[f]->flow_id);
    }
    out += report::json_escape(label);
    out += "\"}}";
  }
  for (const TraceEvent& e : events) {
    comma();
    out += "{\"name\":\"";
    out += report::json_escape(safe_label(e.name));
    out += "\",\"ph\":\"X\",\"pid\":1";
    const int tid = e.flow_id != 0 ? flow_base + flow_lane_of.at(e.flow_id)
                                   : tid_of.at(e.thread_id);
    std::snprintf(buf, sizeof buf,
                  ",\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f", tid,
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"args\":{\"id\":%llu,\"parent\":%llu,\"depth\":%u}}",
                  static_cast<unsigned long long>(e.id),
                  static_cast<unsigned long long>(e.parent_id), e.depth);
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("write_chrome_trace: cannot open " + path);
  }
  os << chrome_trace_json(events);
  os.flush();
  if (!os) {
    throw std::runtime_error("write_chrome_trace: write failed for " +
                             path);
  }
}

}  // namespace arbiterq::telemetry
