#include "arbiterq/telemetry/trace.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

namespace arbiterq::telemetry {

namespace {

std::uint64_t this_thread_hash() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::atomic<std::uint64_t> g_next_span_id{1};

// Per-thread nesting state (parent linkage for ScopedSpan).
thread_local std::uint64_t tls_current_span = 0;
thread_local std::uint32_t tls_depth = 0;

}  // namespace

std::uint64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceBuffer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name) noexcept
    : name_(name), id_(0), parent_id_(0), depth_(0), start_ns_(0) {
  // The runtime kill-switch is sampled once at open: a disabled span
  // never touches the thread-local nesting stack, so toggling the
  // switch mid-span cannot unbalance parent linkage.
  if (!telemetry_runtime_enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = tls_current_span;
  depth_ = tls_depth;
  start_ns_ = trace_now_ns();
  tls_current_span = id_;
  ++tls_depth;
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;  // opened while the runtime switch was off
  const std::uint64_t end_ns = trace_now_ns();
  tls_current_span = parent_id_;
  --tls_depth;
  TraceEvent e;
  e.name = name_;
  e.id = id_;
  e.parent_id = parent_id_;
  e.depth = depth_;
  e.start_ns = start_ns_;
  e.duration_ns = end_ns - start_ns_;
  e.thread_id = this_thread_hash();
  TraceBuffer::global().record(std::move(e));
}

}  // namespace arbiterq::telemetry
