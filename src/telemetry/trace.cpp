#include "arbiterq/telemetry/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

namespace arbiterq::telemetry {

namespace {

std::uint64_t this_thread_hash() noexcept {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

std::atomic<std::uint64_t> g_next_span_id{1};

// Per-thread nesting state (parent linkage for ScopedSpan).
thread_local std::uint64_t tls_current_span = 0;
thread_local std::uint32_t tls_depth = 0;

}  // namespace

std::uint64_t allocate_span_id() noexcept {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed);
}

std::string safe_label(std::string_view s, std::size_t max_len) {
  std::string out;
  out.reserve(std::min(s.size(), max_len));
  std::size_t i = 0;
  while (i < s.size() && out.size() < max_len) {
    const auto b0 = static_cast<unsigned char>(s[i]);
    if (b0 < 0x20 || b0 == 0x7f) {  // control characters
      out += '_';
      ++i;
      continue;
    }
    if (b0 < 0x80) {  // printable ASCII (quotes/backslash kept)
      out += static_cast<char>(b0);
      ++i;
      continue;
    }
    // Multi-byte UTF-8: validate length, continuation bytes, and the
    // lead-byte ranges that exclude overlongs and surrogates (RFC 3629).
    std::size_t len = 0;
    if (b0 >= 0xc2 && b0 <= 0xdf) len = 2;
    else if (b0 >= 0xe0 && b0 <= 0xef) len = 3;
    else if (b0 >= 0xf0 && b0 <= 0xf4) len = 4;
    bool ok = len != 0 && i + len <= s.size() &&
              out.size() + len <= max_len;
    for (std::size_t k = 1; ok && k < len; ++k) {
      const auto bk = static_cast<unsigned char>(s[i + k]);
      ok = bk >= 0x80 && bk <= 0xbf;
      if (ok && k == 1) {
        if (b0 == 0xe0) ok = bk >= 0xa0;        // overlong 3-byte
        else if (b0 == 0xed) ok = bk <= 0x9f;   // surrogates
        else if (b0 == 0xf0) ok = bk >= 0x90;   // overlong 4-byte
        else if (b0 == 0xf4) ok = bk <= 0x8f;   // > U+10FFFF
      }
    }
    if (!ok) {
      out += '_';
      ++i;
      continue;
    }
    out.append(s.substr(i, len));
    i += len;
  }
  return out;
}

std::uint64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           anchor)
          .count());
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

TraceBuffer::TraceBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void TraceBuffer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - ring_.size();
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name) noexcept
    : name_(name), id_(0), parent_id_(0), depth_(0), start_ns_(0) {
  // The runtime kill-switch is sampled once at open: a disabled span
  // never touches the thread-local nesting stack, so toggling the
  // switch mid-span cannot unbalance parent linkage.
  if (!telemetry_runtime_enabled()) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = tls_current_span;
  depth_ = tls_depth;
  start_ns_ = trace_now_ns();
  tls_current_span = id_;
  ++tls_depth;
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;  // opened while the runtime switch was off
  const std::uint64_t end_ns = trace_now_ns();
  tls_current_span = parent_id_;
  --tls_depth;
  TraceEvent e;
  e.name = name_;
  e.id = id_;
  e.parent_id = parent_id_;
  e.depth = depth_;
  e.start_ns = start_ns_;
  e.duration_ns = end_ns - start_ns_;
  e.thread_id = this_thread_hash();
  TraceBuffer::global().record(std::move(e));
}

}  // namespace arbiterq::telemetry
