#include "arbiterq/telemetry/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace arbiterq::telemetry {

namespace {

const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

void append_compact(std::string& out, double v) {
  char buf[40];
  if (!std::isfinite(v)) {
    out += "-";
    return;
  }
  const double a = std::fabs(v);
  if (a != 0.0 && (a >= 1e6 || a < 1e-3)) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
  }
  out += buf;
}

void append_html_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
}

struct Range {
  double lo = 0.0;
  double hi = 0.0;
  bool valid = false;
};

Range finite_range(const std::vector<double>& values) {
  Range r;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    if (!r.valid) {
      r.lo = r.hi = v;
      r.valid = true;
    } else {
      r.lo = std::min(r.lo, v);
      r.hi = std::max(r.hi, v);
    }
  }
  return r;
}

}  // namespace

std::string terminal_sparkline(const std::vector<double>& values) {
  std::string out;
  const Range r = finite_range(values);
  if (!r.valid) return out;
  const double span = r.hi - r.lo;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += " ";
      continue;
    }
    int level = 3;  // flat series renders as a mid row
    if (span > 0.0) {
      level = static_cast<int>((v - r.lo) / span * 7.0 + 0.5);
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

std::string svg_sparkline(const std::vector<double>& values, int width,
                          int height) {
  std::string out;
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "<svg width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">",
                width, height, width, height);
  out += buf;
  const Range r = finite_range(values);
  if (r.valid && values.size() > 1) {
    const double span = r.hi - r.lo;
    out += "<polyline fill=\"none\" stroke=\"#2a7\" stroke-width=\"1.5\" "
           "points=\"";
    const double dx =
        static_cast<double>(width - 2) / static_cast<double>(values.size() - 1);
    for (std::size_t i = 0; i < values.size(); ++i) {
      double v = values[i];
      if (!std::isfinite(v)) v = r.lo;
      const double frac = span > 0.0 ? (v - r.lo) / span : 0.5;
      const double x = 1.0 + dx * static_cast<double>(i);
      const double y = 2.0 + (1.0 - frac) * static_cast<double>(height - 4);
      std::snprintf(buf, sizeof(buf), "%.1f,%.1f ", x, y);
      out += buf;
    }
    out += "\"/>";
  }
  out += "</svg>";
  return out;
}

std::vector<double> plot_values(const SeriesSnapshot& s) {
  std::vector<double> out;
  out.reserve(s.windows.size());
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    switch (s.kind) {
      case SeriesKind::kCounterRate:
      case SeriesKind::kEvent:
        out.push_back(s.rate(i));
        break;
      case SeriesKind::kGauge:
        out.push_back(s.windows[i].last);
        break;
      case SeriesKind::kHistogram:
        out.push_back(s.quantile(i, 0.99));
        break;
    }
  }
  return out;
}

std::string render_dashboard_html(const TimeSeriesStore& store,
                                  const std::string& title,
                                  const std::string& filter,
                                  const std::string& footer_html,
                                  int refresh_seconds) {
  const std::vector<SeriesSnapshot> all = store.snapshot(filter);
  std::string out;
  out.reserve(2048 + all.size() * 512);
  out += "<!DOCTYPE html><html><head><meta charset=\"utf-8\">";
  if (refresh_seconds > 0) {
    out += "<meta http-equiv=\"refresh\" content=\"" +
           std::to_string(refresh_seconds) + "\">";
  }
  out += "<title>";
  append_html_escaped(out, title);
  out += "</title><style>"
         "body{font-family:monospace;background:#14161a;color:#cdd3da;"
         "margin:1.2em}"
         "h1{font-size:1.1em;color:#8fd18f}"
         "table{border-collapse:collapse}"
         "td,th{padding:2px 10px;text-align:left;border-bottom:1px solid "
         "#262a30;font-size:0.85em;white-space:nowrap}"
         "th{color:#7aa2c4}"
         ".k{color:#6b7480}"
         "</style></head><body><h1>";
  append_html_escaped(out, title);
  out += "</h1><table><tr><th>series</th><th>kind</th><th></th>"
         "<th>latest</th><th>min</th><th>max</th><th>windows</th></tr>";
  for (const SeriesSnapshot& s : all) {
    const std::vector<double> vals = plot_values(s);
    const Range r = finite_range(vals);
    out += "<tr><td>";
    append_html_escaped(out, s.name);
    out += "</td><td class=\"k\">";
    out += series_kind_name(s.kind);
    out += "</td><td>";
    out += svg_sparkline(vals);
    out += "</td><td>";
    append_compact(out, vals.empty() ? 0.0 : vals.back());
    out += "</td><td>";
    append_compact(out, r.valid ? r.lo : 0.0);
    out += "</td><td>";
    append_compact(out, r.valid ? r.hi : 0.0);
    out += "</td><td class=\"k\">";
    out += std::to_string(s.windows.size());
    out += "</td></tr>";
  }
  out += "</table>";
  if (!footer_html.empty()) out += footer_html;
  out += "</body></html>";
  return out;
}

}  // namespace arbiterq::telemetry
