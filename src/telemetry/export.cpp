#include "arbiterq/telemetry/export.hpp"

#include <cstdio>
#include <stdexcept>

#include "arbiterq/report/jsonl.hpp"

namespace arbiterq::telemetry {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

}  // namespace

report::CsvTable metrics_csv(const MetricsSnapshot& snapshot) {
  report::CsvTable table({"kind", "name", "value", "count", "sum"});
  for (const auto& c : snapshot.counters) {
    table.add_row({"counter", c.name, std::to_string(c.value), "", ""});
  }
  for (const auto& g : snapshot.gauges) {
    table.add_row({"gauge", g.name, fmt_double(g.value), "", ""});
  }
  for (const auto& h : snapshot.histograms) {
    std::string buckets;
    for (std::size_t b = 0; b < h.bucket_counts.size(); ++b) {
      if (h.bucket_counts[b] == 0) continue;
      if (!buckets.empty()) buckets += " ";
      buckets += "le=";
      buckets += b < h.upper_bounds.size() ? fmt_double(h.upper_bounds[b])
                                           : std::string("+inf");
      buckets += ":" + std::to_string(h.bucket_counts[b]);
    }
    table.add_row({"histogram", h.name, buckets, std::to_string(h.count),
                   fmt_double(h.sum)});
  }
  return table;
}

report::CsvTable spans_csv(const std::vector<TraceEvent>& events) {
  report::CsvTable table(
      {"name", "id", "parent", "depth", "start_ns", "dur_ns", "thread"});
  for (const TraceEvent& e : events) {
    table.add_row({e.name, std::to_string(e.id), std::to_string(e.parent_id),
                   std::to_string(e.depth), std::to_string(e.start_ns),
                   std::to_string(e.duration_ns),
                   std::to_string(e.thread_id)});
  }
  return table;
}

JsonlExporter::JsonlExporter(const std::string& path)
    : path_(path), os_(path) {
  if (!os_) {
    throw std::runtime_error("JsonlExporter: cannot open " + path);
  }
  line(report::JsonLine()
           .field("type", "meta")
           .field("schema", 1)
           .field("telemetry_enabled", ARBITERQ_TELEMETRY_ENABLED != 0)
           .finish());
}

JsonlExporter::~JsonlExporter() {
  if (!closed_) {
    os_.flush();  // destructor must not throw; close() reports errors
  }
}

void JsonlExporter::line(const std::string& object) {
  if (closed_) {
    throw std::logic_error("JsonlExporter: write after close");
  }
  os_ << object << "\n";
  if (!os_) {
    throw std::runtime_error("JsonlExporter: write failed for " + path_);
  }
  ++lines_;
}

void JsonlExporter::on_epoch(const EpochQpuRecord& r) {
  line(report::JsonLine()
           .field("type", "epoch")
           .field("strategy", r.strategy)
           .field("epoch", r.epoch)
           .field("qpu", r.qpu)
           .field("online", r.online)
           .field("churned", r.churned)
           .field("group", r.group)
           .field("group_size", r.group_size)
           .field("loss", r.loss)
           .field("grad_norm", r.grad_norm)
           .field("shots_est", r.shots_estimate)
           .finish());
}

void JsonlExporter::on_assignment(const AssignmentRecord& r) {
  std::vector<int> split_qpu;
  std::vector<int> split_shots;
  split_qpu.reserve(r.shot_split.size());
  split_shots.reserve(r.shot_split.size());
  for (const QpuShotShare& s : r.shot_split) {
    split_qpu.push_back(s.qpu);
    split_shots.push_back(s.shots);
  }
  line(report::JsonLine()
           .field("type", "assignment")
           .field("task", r.task)
           .field("torus", r.torus)
           .field("score", r.estimated_score)
           .field("warmup_loss", r.warmup_difficulty)
           .field("loss", r.realized_loss)
           .field("split_qpu", split_qpu)
           .field("split_shots", split_shots)
           .finish());
}

void JsonlExporter::write_metrics(const MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    line(report::JsonLine()
             .field("type", "counter")
             .field("name", c.name)
             .field("value", c.value)
             .finish());
  }
  for (const auto& g : snapshot.gauges) {
    line(report::JsonLine()
             .field("type", "gauge")
             .field("name", g.name)
             .field("value", g.value)
             .finish());
  }
  for (const auto& h : snapshot.histograms) {
    line(report::JsonLine()
             .field("type", "histogram")
             .field("name", h.name)
             .field("count", h.count)
             .field("sum", h.sum)
             .field("bounds", h.upper_bounds)
             .field("buckets", h.bucket_counts)
             .finish());
  }
}

void JsonlExporter::write_spans(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) {
    report::JsonLine l;
    l.field("type", "span")
        .field("name", e.name)
        .field("id", e.id)
        .field("parent", e.parent_id)
        .field("depth", static_cast<std::uint64_t>(e.depth))
        .field("start_ns", e.start_ns)
        .field("dur_ns", e.duration_ns)
        .field("thread", e.thread_id);
    if (e.flow_id != 0) {
      l.field("flow", e.flow_id).field("flow_label", e.flow_label);
    }
    line(l.finish());
  }
}

void JsonlExporter::write_global_state() {
  write_metrics(MetricsRegistry::global().snapshot());
  write_spans(TraceBuffer::global().snapshot());
}

void JsonlExporter::close() {
  if (closed_) return;
  os_.flush();
  if (!os_) {
    throw std::runtime_error("JsonlExporter: flush failed for " + path_);
  }
  os_.close();
  if (os_.fail()) {
    throw std::runtime_error("JsonlExporter: close failed for " + path_);
  }
  closed_ = true;
}

}  // namespace arbiterq::telemetry
