#include "arbiterq/telemetry/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace arbiterq::telemetry {

namespace detail {

std::atomic<signed char> g_runtime_state{-1};

bool runtime_enabled_slow() noexcept {
  bool enabled = true;
  if (const char* env = std::getenv("ARBITERQ_TELEMETRY")) {
    std::string v(env);
    for (char& c : v) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (v == "0" || v == "off" || v == "false") enabled = false;
  }
  // Racing first calls all derive the same answer from the environment,
  // so the double store is benign.
  g_runtime_state.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return enabled;
}

}  // namespace detail

void set_telemetry_runtime_enabled(bool enabled) noexcept {
  detail::g_runtime_state.store(enabled ? 1 : 0,
                                std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: no buckets");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds not strictly ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || bucket_counts.empty() || upper_bounds.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
    const std::uint64_t prev = cumulative;
    cumulative += bucket_counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= upper_bounds.size()) return upper_bounds.back();  // overflow
    const double upper = upper_bounds[b];
    const double lower =
        b == 0 ? (upper > 0.0 ? 0.0 : upper) : upper_bounds[b - 1];
    if (bucket_counts[b] == 0 || lower == upper) return upper;
    const double within =
        (rank - static_cast<double>(prev)) /
        static_cast<double>(bucket_counts[b]);
    return lower + (upper - lower) * within;
  }
  return upper_bounds.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(
    const std::string& name, const std::vector<double>& upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second->upper_bounds() != upper_bounds) {
      throw std::invalid_argument("MetricsRegistry::histogram: '" + name +
                                  "' re-registered with different bounds");
    }
    return *it->second;
  }
  auto histo = std::make_unique<Histogram>(upper_bounds);
  Histogram& ref = *histo;
  histograms_.emplace(name, std::move(histo));
  return ref;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back({name, h->upper_bounds(), h->bucket_counts(),
                               h->count(), h->sum()});
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

const std::vector<double>& latency_buckets_us() {
  static const std::vector<double> buckets = {
      1.0,     2.0,     5.0,     10.0,     20.0,     50.0,
      100.0,   200.0,   500.0,   1000.0,   2000.0,   5000.0,
      10000.0, 20000.0, 50000.0, 100000.0, 1000000.0, 10000000.0};
  return buckets;
}

}  // namespace arbiterq::telemetry
