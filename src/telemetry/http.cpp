#include "arbiterq/telemetry/http.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace arbiterq::telemetry {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

std::string render(const ScrapeResponse& r, bool head_only) {
  std::string out = "HTTP/1.0 " + std::to_string(r.status) + " " +
                    status_text(r.status) + "\r\n";
  out += "Content-Type: " + r.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(r.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += r.body;
  return out;
}

}  // namespace

const char* prometheus_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

std::string query_param(const std::string& query, const std::string& key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return {};
}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::handle(const std::string& path, Handler handler) {
  handle_query(path, [handler = std::move(handler)](const std::string&) {
    return handler();
  });
}

void ScrapeServer::handle_query(const std::string& path,
                                QueryHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[path] = std::move(handler);
}

void ScrapeServer::handle_text(const std::string& path,
                               std::string content_type,
                               std::function<std::string()> body) {
  handle(path, [content_type = std::move(content_type),
                body = std::move(body)]() {
    ScrapeResponse r;
    r.content_type = content_type;
    r.body = body();
    return r;
  });
}

std::string ScrapeServer::dispatch(const std::string& request) const {
  // Request line: METHOD SP PATH SP VERSION. Everything after the first
  // line (headers) is irrelevant to a scrape.
  const std::size_t eol = request.find("\r\n");
  const std::string line =
      eol == std::string::npos ? request : request.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    ScrapeResponse r;
    r.status = 400;
    r.body = "bad request\n";
    return render(r, false);
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query_string;
  const std::size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }

  const bool head = method == "HEAD";
  if (method != "GET" && !head) {
    ScrapeResponse r;
    r.status = 405;
    r.body = "only GET is served here\n";
    return render(r, head);
  }

  QueryHandler handler;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = handlers_.find(path);
    if (it != handlers_.end()) handler = it->second;
  }
  if (!handler) {
    ScrapeResponse r;
    r.status = 404;
    std::string known;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [p, h] : handlers_) known += "  " + p + "\n";
    }
    r.body = "not found; registered paths:\n" + known;
    return render(r, head);
  }
  return render(handler(query_string), head);
}

bool ScrapeServer::start(std::uint16_t port) {
  if (running_.load()) {
    throw std::logic_error("ScrapeServer::start: already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return false;
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_requested_.store(false);
  running_.store(true);
  thread_ = std::thread(&ScrapeServer::serve_loop, this);
  return true;
}

void ScrapeServer::serve_loop() {
  while (!stop_requested_.load()) {
    pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    const int n = ::poll(&p, 1, /*timeout_ms=*/100);
    if (n <= 0 || (p.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // One bounded read is enough: scrape requests are a request line
    // plus a few headers. A client that trickles bytes gets cut off by
    // the receive timeout rather than wedging the loop.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char buf[4096];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16384) {
      const ssize_t got = ::recv(client, buf, sizeof buf, 0);
      if (got <= 0) break;
      request.append(buf, static_cast<std::size_t>(got));
    }
    if (!request.empty()) {
      const std::string response = dispatch(request);
      std::size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t put = ::send(client, response.data() + sent,
                                   response.size() - sent, MSG_NOSIGNAL);
        if (put <= 0) break;
        sent += static_cast<std::size_t>(put);
      }
      requests_.fetch_add(1);
    }
    ::close(client);
  }
}

void ScrapeServer::stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

}  // namespace arbiterq::telemetry
