#pragma once
// ScrapeServer: a minimal embedded HTTP endpoint for live observability
// scrapes — `/metrics` (Prometheus text exposition), `/healthz`,
// `/slo`, or anything else a caller registers. Plain POSIX sockets, one
// background thread, no third-party dependencies: it exists so a
// long-running `arbiterq_cli --serve --listen <port>` run can be
// scraped by curl or a Prometheus agent while jobs are in flight.
//
// Scope is deliberately tiny: GET/HEAD only, one request per
// connection (`Connection: close`), bodies rendered by the registered
// handler at request time, requests answered serially on the accept
// thread. That is exactly what a scrape loop needs and nothing more —
// this is not a web server.
//
// Handlers run on the server thread while jobs execute elsewhere, so
// they must only touch thread-safe state (MetricsRegistry::global()
// snapshots, FleetHealthMonitor::report(), SloEngine::report() all
// qualify). Registration is mutex-guarded and allowed while running.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace arbiterq::telemetry {

struct ScrapeResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Content type for /metrics (Prometheus text exposition 0.0.4).
const char* prometheus_content_type();

/// Value of `key` in a raw query string ("a=1&b=x" style); empty when
/// absent. No percent-decoding — scrape filters are plain metric-name
/// substrings.
std::string query_param(const std::string& query, const std::string& key);

class ScrapeServer {
 public:
  using Handler = std::function<ScrapeResponse()>;
  /// Query-aware handler: receives the raw query string (the part after
  /// '?', empty when there is none); see query_param().
  using QueryHandler = std::function<ScrapeResponse(const std::string&)>;

  ScrapeServer() = default;
  /// Joins the server thread and closes the socket.
  ~ScrapeServer();

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Register (or replace) the handler for an exact path, e.g.
  /// "/metrics". Query strings are stripped before lookup (and ignored).
  void handle(const std::string& path, Handler handler);
  /// Register a handler that also sees the request's query string
  /// (label-filterable endpoints like /timeseries?name=serve.shard).
  void handle_query(const std::string& path, QueryHandler handler);
  /// Convenience: a 200 handler with a fixed content type whose body is
  /// rendered per request.
  void handle_text(const std::string& path, std::string content_type,
                   std::function<std::string()> body);

  /// Bind 127.0.0.1:`port` (0 = kernel-assigned, see port()) and start
  /// the accept loop. False when the socket can't be created or bound
  /// (e.g. the port is taken); throws std::logic_error if already
  /// running.
  bool start(std::uint16_t port);
  /// Stop accepting, close the socket, join the thread. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(); }
  /// The bound port (resolved after start() with port 0).
  std::uint16_t port() const noexcept { return port_; }
  std::uint64_t requests_served() const noexcept { return requests_.load(); }

  /// Testable core: map one raw HTTP request to the full response
  /// bytes (status line + headers + body).
  std::string dispatch(const std::string& request) const;

 private:
  void serve_loop();

  mutable std::mutex mu_;
  std::map<std::string, QueryHandler> handlers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace arbiterq::telemetry
