#pragma once
// Prometheus text-exposition (format version 0.0.4) rendering of a
// MetricsSnapshot, so any run can drop a scrape-ready file next to its
// JSONL dump (node_exporter textfile-collector style).
//
// Mapping:
//  * internal `subsystem.verb.noun` names are sanitized ([^a-zA-Z0-9_:]
//    → '_') and prefixed `arbiterq_`; two internal names that collide
//    after sanitization share one family (callers own name hygiene);
//  * counters render as `<name>_total <value>` with TYPE counter;
//  * gauges render as-is with TYPE gauge;
//  * histograms render the full family: cumulative `_bucket{le="..."}`
//    samples (our per-bucket counts are summed into the cumulative form
//    the format requires, ending in le="+Inf"), then `_sum` and
//    `_count`.
// Every family gets `# HELP` / `# TYPE` comment lines.

#include <string>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::telemetry {

/// `arbiterq_` + name with every character outside [a-zA-Z0-9_:]
/// replaced by '_'.
std::string prometheus_name(const std::string& name);

/// The full exposition document (ends with a newline; empty snapshot
/// renders an empty string).
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Write prometheus_text to `path`; throws std::runtime_error on I/O
/// failure.
void write_prometheus(const std::string& path,
                      const MetricsSnapshot& snapshot);

}  // namespace arbiterq::telemetry
