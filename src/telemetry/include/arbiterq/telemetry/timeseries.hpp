#pragma once
// Windowed time-series over the metrics registry: the history layer the
// point-in-time surfaces (Prometheus scrape, SLO burn, health table)
// lack. A TimeSeriesStore folds observations into fixed-width windows
// keyed by floor(t / window_us), keeping at most `max_windows` windows
// per series (ring retention: oldest window evicted first), so memory is
// bounded by max_series × max_windows × sizeof(window) (+ one bucket
// vector per histogram window).
//
// Two ingestion paths feed the same store:
//
//  * sample(snapshot, t): the Collector thread calls this on a fixed
//    cadence with a full MetricsRegistry snapshot. Cumulative counters
//    and histogram buckets are differenced against the previous sample
//    (counter -> per-window delta/rate, histogram -> per-window bucket
//    deltas with p50/p99), gauges keep last/min/max per window. This is
//    the real-time path for live serving.
//
//  * observe(series, t, value): direct event ingestion at a
//    caller-supplied timestamp. The serving runtime uses this with
//    *modeled virtual* timestamps that are pure functions of the
//    admitted job sequence, so the resulting series is bit-identical
//    across runs regardless of thread interleaving: every per-window
//    aggregate emitted for event/histogram series (count, bucket
//    deltas, min, max) is order-independent, and sums are only emitted
//    for unit-valued events where FP addition cannot reorder-drift.
//    Bit-identity holds as long as a series' active span fits inside
//    the retention ring; once eviction kicks in, which windows survive
//    can depend on arrival order.
//
// Thread safety: the store-level series map has its own mutex; each
// series carries a private mutex so concurrent writers to *different*
// series never contend. Callers on hot paths should resolve a Series*
// handle once (series()) and then observe() through it.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <condition_variable>
#include <vector>

#include "arbiterq/telemetry/metrics.hpp"

namespace arbiterq::telemetry {

struct TimeSeriesConfig {
  /// Window width in the ingesting clock's microseconds (wall us for the
  /// Collector, modeled virtual us for the serving runtime's event path).
  double window_us = 1'000'000.0;
  /// Ring retention: windows kept per series; the oldest is evicted when
  /// a newer window would exceed this.
  std::size_t max_windows = 64;
  /// Cap on distinct series; observations for series past the cap are
  /// counted in dropped_series() and otherwise ignored.
  std::size_t max_series = 4096;
};

enum class SeriesKind : std::uint8_t {
  kCounterRate,  ///< sampled cumulative counter, folded to per-window deltas
  kGauge,        ///< sampled gauge, last/min/max per window
  kHistogram,    ///< bucketed values: per-window bucket deltas, p50/p99
  kEvent,        ///< direct events: count/rate, sum, min/max per window
};

const char* series_kind_name(SeriesKind kind) noexcept;

/// One closed or filling window of a series (copied out by snapshot()).
struct SeriesWindow {
  std::int64_t index = 0;    ///< floor(t / window_us)
  std::uint64_t samples = 0; ///< registry samples or events folded in
  double delta = 0.0;        ///< counter increase within the window
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint64_t count = 0;              ///< histogram/event observations
  std::vector<std::uint64_t> buckets;   ///< histogram kinds only
};

struct SeriesSnapshot {
  std::string name;
  SeriesKind kind = SeriesKind::kEvent;
  double window_us = 0.0;
  std::vector<double> upper_bounds;  ///< histogram kinds only
  std::vector<SeriesWindow> windows; ///< ascending by index

  /// Per-window rate: counter delta (or event count) per *second* of
  /// series time.
  double rate(std::size_t i) const;
  /// Window quantile for histogram kinds (NaN otherwise / when empty).
  double quantile(std::size_t i, double q) const;
};

class TimeSeriesStore {
 public:
  class Series;

  explicit TimeSeriesStore(TimeSeriesConfig cfg = {});
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TimeSeriesConfig& config() const noexcept { return cfg_; }

  /// Resolve (creating on first use) the series registered under `name`.
  /// The handle stays valid for the store's lifetime. Returns nullptr
  /// when the series cap is hit (the drop is counted), or throws
  /// std::invalid_argument when `name` exists with a different kind or
  /// bounds. `upper_bounds` is required for kHistogram and must be
  /// strictly ascending.
  Series* series(const std::string& name, SeriesKind kind,
                 const std::vector<double>& upper_bounds = {});

  /// Record one event at time `t_us` into a previously resolved series.
  /// For kEvent: count += 1, sum += value, min/max fold. For kHistogram:
  /// the value is additionally bucketed. Null `s` is ignored (cap-dropped
  /// series), so hot paths need no branch.
  void observe(Series* s, double t_us, double value);
  /// Convenience: resolve-and-observe an event series by name.
  void observe(const std::string& name, double t_us, double value);

  /// Fold a full registry snapshot taken at time `t_us`: counters and
  /// histograms are differenced against the previous sample (a value
  /// decrease is treated as a registry reset and folded as-is), gauges
  /// keep last/min/max. Intended to be called from a single sampler
  /// thread (the Collector).
  void sample(const MetricsSnapshot& snap, double t_us);

  /// Copy out every series whose name contains `filter` (all when
  /// empty), windows ascending, series name-sorted.
  std::vector<SeriesSnapshot> snapshot(const std::string& filter = {}) const;

  /// Stable JSON document for /timeseries and BENCH artifacts:
  /// {"window_us":..,"series":[{"name":..,"kind":..,"windows":[..]}]}.
  /// Only order-independent fields are emitted for histogram windows
  /// (count/min/max/p50/p99), keeping virtual-clock series bit-stable.
  std::string to_json(const std::string& filter = {}) const;

  std::size_t series_count() const;
  std::uint64_t dropped_series() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  TimeSeriesConfig cfg_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Series>> series_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Background sampler: snapshots a MetricsRegistry on a fixed cadence
/// and folds it into a TimeSeriesStore. The clock is pluggable — wall
/// microseconds by default, a virtual/bench clock under test — and an
/// optional pre_sample hook runs before each snapshot so callers can
/// publish derived gauges (per-shard ShardStats) into the registry
/// first; post_sample runs after the fold (watchdog polls).
///
/// Overhead budget: one registry snapshot (a mutex-guarded copy of every
/// entry) plus one store fold per cadence tick, independent of job
/// throughput. At the default 250ms cadence with a few hundred metrics
/// this is well under 0.1% of a core; bench_perf --telemetry-ab and
/// --serving-scale both A/B it (see DESIGN.md §Time-series telemetry).
struct CollectorOptions {
  double cadence_us = 250'000.0;
  /// Sample clock in microseconds; defaults to a steady wall clock.
  std::function<double()> clock;
  std::function<void()> pre_sample;
  std::function<void()> post_sample;
};

class Collector {
 public:
  using Options = CollectorOptions;

  Collector(TimeSeriesStore& store, MetricsRegistry& registry,
            Options opts = {});
  /// Stops the thread if running.
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  /// One synchronous sample on the caller's thread (usable without
  /// start(); also taken once by stop() so short runs always close with
  /// a final sample).
  void collect_once();

  std::uint64_t samples() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  TimeSeriesStore& store_;
  MetricsRegistry& registry_;
  Options opts_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<std::uint64_t> samples_{0};
};

/// Monotonic wall clock in microseconds (the Collector's default clock).
double steady_now_us();

}  // namespace arbiterq::telemetry
