#pragma once
// Dashboard renderers over a TimeSeriesStore: a self-contained HTML page
// with inline SVG sparklines for the ScrapeServer's /dashboard endpoint,
// and Unicode block sparklines for `arbiterq_cli --watch`'s terminal
// view. Everything is rendered server-side at request time — no
// JavaScript beyond a meta refresh, no external assets — so the page
// works from curl, an air-gapped browser, or a CI artifact.

#include <string>
#include <vector>

#include "arbiterq/telemetry/timeseries.hpp"

namespace arbiterq::telemetry {

/// One row of Unicode block characters (U+2581..U+2588), min-max scaled;
/// empty input renders as an empty string, a flat series as a mid row.
std::string terminal_sparkline(const std::vector<double>& values);

/// Inline SVG polyline sparkline (self-contained, no external refs).
std::string svg_sparkline(const std::vector<double>& values, int width = 160,
                          int height = 28);

/// Per-window scalar used for plots: rate for counter/event series,
/// window-last for gauges, p99 for histograms.
std::vector<double> plot_values(const SeriesSnapshot& s);

/// Full self-contained HTML dashboard: one sparkline row per series in
/// the store (filtered by substring when `filter` is non-empty), with
/// latest value, min, and max. `footer_html` is appended verbatim
/// (callers inject health/anomaly summaries without telemetry depending
/// on the monitor layer). Auto-refreshes every `refresh_seconds` when
/// positive.
std::string render_dashboard_html(const TimeSeriesStore& store,
                                  const std::string& title,
                                  const std::string& filter = {},
                                  const std::string& footer_html = {},
                                  int refresh_seconds = 2);

}  // namespace arbiterq::telemetry
