#pragma once
// Scoped trace spans: `AQ_TRACE_SPAN("transpile.route");` opens an RAII
// timer that records a TraceEvent into the process-wide ring buffer when
// the scope exits. Spans nest — a thread-local stack links each span to
// its parent, so exporters can reconstruct the call tree from
// (id, parent_id, depth). Events land in *completion* order (children
// before their parent), each carrying its start timestamp.
//
// The ring buffer is bounded (default 65536 events): under sustained load
// the oldest events are overwritten and `dropped()` counts the loss —
// telemetry never grows without bound and never throws on the hot path.
//
// With ARBITERQ_TELEMETRY=OFF the macro compiles to nothing; the classes
// stay available so exporters and tests still link.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "arbiterq/telemetry/metrics.hpp"  // ARBITERQ_TELEMETRY_ENABLED

namespace arbiterq::telemetry {

struct TraceEvent {
  std::string name;           ///< span label, `subsystem.verb.noun`
  std::uint64_t id = 0;       ///< unique per process, starts at 1
  std::uint64_t parent_id = 0;  ///< 0 = root span
  std::uint32_t depth = 0;    ///< 0 for roots, parent.depth + 1 otherwise
  std::uint64_t start_ns = 0;  ///< steady-clock ns since process anchor
  std::uint64_t duration_ns = 0;
  std::uint64_t thread_id = 0;  ///< hashed std::thread::id
  /// Causal-flow lane key for events that belong to a logical unit of
  /// work crossing threads (a serving job): exporters group same-flow
  /// events into one lane instead of per-thread lanes. 0 = none (the
  /// serving tracer stores job_id + 1 so job 0 is representable).
  std::uint64_t flow_id = 0;
  /// Human label for the flow lane (e.g. "job-17 tenant=acme"). Pass it
  /// through safe_label() before recording: exporters escape, but only
  /// sanitization makes hostile tenants harmless in every format.
  std::string flow_label;
};

/// Monotonic nanoseconds since a fixed process-lifetime anchor.
std::uint64_t trace_now_ns() noexcept;

/// Draw a fresh span id from the same process-wide sequence ScopedSpan
/// uses. For manually-stitched cross-thread span trees (the serving
/// runtime's per-job traces) where RAII nesting can't express parentage.
std::uint64_t allocate_span_id() noexcept;

/// Sanitize a user-supplied label (tenant, job name) for embedding in
/// span names, flow labels, and metric names: control characters and
/// invalid UTF-8 byte sequences become '_', and the result is truncated
/// to `max_len` bytes on a UTF-8 boundary. Quotes and backslashes are
/// kept — each exporter escapes them for its own format.
std::string safe_label(std::string_view s, std::size_t max_len = 128);

class TraceBuffer {
 public:
  /// The process-wide buffer AQ_TRACE_SPAN feeds.
  static TraceBuffer& global();

  explicit TraceBuffer(std::size_t capacity = 65536);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  void record(TraceEvent e);
  /// Oldest-first copy of the retained events.
  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const;
  std::size_t capacity() const;
  /// Events recorded over the buffer's lifetime (cleared resets it).
  std::uint64_t total_recorded() const;
  /// Events lost to ring overwrite: total_recorded() - size().
  std::uint64_t dropped() const;
  /// Drops retained events and zeroes the lifetime counters.
  void clear();
  /// Clears and resizes; capacity 0 is rounded up to 1.
  void set_capacity(std::size_t capacity);

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t total_ = 0;
};

/// RAII span. Construct on the stack (via AQ_TRACE_SPAN); destruction
/// records the event into TraceBuffer::global() and pops the thread-local
/// parent stack. Not movable: its address is the nesting invariant.
/// When telemetry_runtime_enabled() is false at construction the span is
/// inert (id() == 0): nothing is pushed, timed, or recorded.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  std::uint64_t parent_id() const noexcept { return parent_id_; }
  std::uint32_t depth() const noexcept { return depth_; }

 private:
  const char* name_;
  std::uint64_t id_;
  std::uint64_t parent_id_;
  std::uint32_t depth_;
  std::uint64_t start_ns_;
};

}  // namespace arbiterq::telemetry

#if ARBITERQ_TELEMETRY_ENABLED

#define AQ_TELEMETRY_CONCAT_INNER(a, b) a##b
#define AQ_TELEMETRY_CONCAT(a, b) AQ_TELEMETRY_CONCAT_INNER(a, b)
#define AQ_TRACE_SPAN(name)                     \
  ::arbiterq::telemetry::ScopedSpan AQ_TELEMETRY_CONCAT( \
      aq_trace_span_, __LINE__)(name)

#else  // ARBITERQ_TELEMETRY_ENABLED

#define AQ_TRACE_SPAN(name) static_cast<void>(0)

#endif  // ARBITERQ_TELEMETRY_ENABLED
