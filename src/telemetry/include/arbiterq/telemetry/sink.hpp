#pragma once
// Training/inference telemetry sinks. `core/trainers.cpp` drives
// on_epoch() with one record per (epoch, QPU); `core/scheduler.cpp`
// drives on_assignment() with one record per inference task. Sinks are
// explicit opt-in (a nullptr sink costs one branch), so they work
// identically in ARBITERQ_TELEMETRY=OFF builds — only the ambient
// span/counter macros compile away there.

#include <cstdint>
#include <string>
#include <vector>

namespace arbiterq::telemetry {

/// One (epoch, QPU) observation from distributed training.
struct EpochQpuRecord {
  std::string strategy;  ///< core::strategy_name() label
  int epoch = 0;         ///< 0-based
  int qpu = 0;           ///< fleet index
  bool online = true;    ///< device churn state this epoch
  /// Online state flipped relative to the previous epoch (always false at
  /// epoch 0): the per-node churn signal.
  bool churned = false;
  int group = -1;      ///< similarity-group index (threshold grouping)
  int group_size = 1;  ///< members in that group, including this node
  double loss = 0.0;   ///< node's test loss on its deployed weights
  double grad_norm = 0.0;  ///< l2 norm of the node's (post-prune) gradient
  /// Parameter-shift shot accounting: 2 circuit evaluations per weight
  /// per sample at the configured shots-per-evaluation granularity. An
  /// estimate of the hardware budget this epoch would have consumed.
  std::uint64_t shots_estimate = 0;
};

struct QpuShotShare {
  int qpu = 0;
  int shots = 0;
};

/// One inference-task assignment from the shot-oriented scheduler.
struct AssignmentRecord {
  std::size_t task = 0;
  int torus = 0;  ///< torus the greedy pass picked
  /// The torus accuracy score the assignment sorted on (higher = cleaner
  /// members) — the *estimated* fidelity proxy.
  double estimated_score = 0.0;
  /// Warm-up loss sketch that ranked the task's difficulty.
  double warmup_difficulty = 0.0;
  /// Loss realized by the full-budget execution — compare against the
  /// estimate to judge the scheduler's ranking quality.
  double realized_loss = 0.0;
  std::vector<QpuShotShare> shot_split;  ///< shots per member QPU
};

class TrainingTelemetry {
 public:
  virtual ~TrainingTelemetry() = default;
  virtual void on_epoch(const EpochQpuRecord& record) = 0;
  virtual void on_assignment(const AssignmentRecord& record) = 0;
};

/// In-memory sink for tests and ad-hoc analysis.
class RecordingTelemetry final : public TrainingTelemetry {
 public:
  void on_epoch(const EpochQpuRecord& record) override {
    epochs.push_back(record);
  }
  void on_assignment(const AssignmentRecord& record) override {
    assignments.push_back(record);
  }

  std::vector<EpochQpuRecord> epochs;
  std::vector<AssignmentRecord> assignments;
};

}  // namespace arbiterq::telemetry
