#pragma once
// Span profiler + Perfetto export over the TraceBuffer ring.
//
// TraceProfile rolls raw TraceEvents up into per-span-name aggregates:
// call count, total (inclusive) time, self time, min/max/mean. Self
// time is inclusive time minus the inclusive time of *direct* children,
// reconstructed from the (id, parent_id) linkage the spans record.
//
// Completion-order invariant both consumers lean on: a span records its
// event when it *closes*, and children close before their parent, so a
// parent's event is always recorded after all of its children's. The
// ring buffer drops oldest-first, therefore a child present in a
// snapshot implies its (closed) parent is present too — the only
// missing parents are spans still open at snapshot time, or roots.
// Self-time subtraction simply skips children whose parent is absent;
// the Chrome exporter needs no tree at all (complete "X" events carry
// their own timestamps).
//
// chrome_trace_json() emits the Chrome trace-event JSON format
// (catapult), loadable in Perfetto / chrome://tracing: one complete
// ("ph":"X") event per span with microsecond timestamps, pid 1, and a
// small ordinal tid per distinct recording thread (hashed thread ids
// are remapped in order of first appearance so lanes stay coherent and
// stable across exports of the same snapshot).

#include <cstdint>
#include <string>
#include <vector>

#include "arbiterq/report/csv.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::telemetry {

/// Aggregate over every recorded span sharing one name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< inclusive (sum of durations)
  std::uint64_t self_ns = 0;   ///< total minus direct children's totals
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;

  double mean_ns() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(total_ns) /
                            static_cast<double>(count);
  }
};

class TraceProfile {
 public:
  /// Aggregate a snapshot (e.g. TraceBuffer::global().snapshot()).
  static TraceProfile from_events(const std::vector<TraceEvent>& events);

  /// Rows sorted by total_ns descending (the hot names first).
  const std::vector<SpanStats>& rows() const noexcept { return rows_; }
  std::size_t total_events() const noexcept { return total_events_; }

  /// Fixed-width human-readable table (name, count, total/self/mean ms,
  /// min/max).
  std::string to_table_string() const;

 private:
  std::vector<SpanStats> rows_;
  std::size_t total_events_ = 0;
};

/// Columns: name,count,total_ns,self_ns,mean_ns,min_ns,max_ns.
report::CsvTable profile_csv(const TraceProfile& profile);

/// Chrome trace-event JSON ("traceEvents" array of complete X events
/// plus thread_name metadata). Timestamps are microseconds since the
/// process trace anchor.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Write chrome_trace_json to `path`; throws std::runtime_error on I/O
/// failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace arbiterq::telemetry
