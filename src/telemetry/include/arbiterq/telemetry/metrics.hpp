#pragma once
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms. Increments are lock-free (relaxed atomics); registration is
// mutex-guarded and returns stable references, so hot paths pay one
// registry lookup at first use (the AQ_* macros cache it in a
// function-local static) and a relaxed atomic op thereafter.
//
// Naming convention: `subsystem.verb.noun`, e.g. `sim.apply.gate1q`,
// `transpile.compile.calls`, `core.train.epochs`.
//
// The registry survives `reset_values()` with all registrations intact —
// references handed out earlier stay valid forever; only the values are
// zeroed. Entries are never removed.
//
// When the CMake option ARBITERQ_TELEMETRY is OFF the instrumentation
// macros below compile to `static_cast<void>(0)` so instrumented hot
// loops pay nothing; the classes themselves remain available (exporters
// then see an empty registry).

#include <cstdint>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef ARBITERQ_TELEMETRY_ENABLED
#define ARBITERQ_TELEMETRY_ENABLED 1
#endif

namespace arbiterq::telemetry {

namespace detail {
/// -1 = uninitialized (read ARBITERQ_TELEMETRY env var on first use),
/// 0 = disabled, 1 = enabled.
extern std::atomic<signed char> g_runtime_state;
bool runtime_enabled_slow() noexcept;
}  // namespace detail

/// Runtime master switch for the AQ_* macros and ScopedSpan recording.
/// First use reads the ARBITERQ_TELEMETRY environment variable — "0",
/// "off" or "false" (any case) disable, anything else (or unset)
/// enables. The compile-time option of the same name removes the call
/// sites entirely; this flag is the runtime kill-switch for builds that
/// keep them (and the lever bench_perf --telemetry-ab flips to measure
/// instrumentation overhead in-process). Explicit TraceBuffer::record /
/// Counter::add calls are NOT gated — only the ambient macro sites.
inline bool telemetry_runtime_enabled() noexcept {
  const signed char s =
      detail::g_runtime_state.load(std::memory_order_relaxed);
  return s >= 0 ? s != 0 : detail::runtime_enabled_slow();
}

/// Override the environment-derived state (takes effect immediately on
/// every thread; pending spans opened while enabled still record).
void set_telemetry_runtime_enabled(bool enabled) noexcept;

class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  /// CAS loop (std::atomic<double>::fetch_add is not portable enough).
  void add(double delta) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive bucket tops in
/// ascending order; one implicit +inf bucket is appended. observe() is a
/// linear scan over the (few) bounds plus relaxed atomic increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  const std::vector<double>& upper_bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries, last = overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> bucket_counts;  ///< bounds + overflow
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate by linear interpolation inside the target bucket
  /// (the Prometheus histogram_quantile rule): the rank q*count lands in
  /// some bucket; the estimate interpolates between that bucket's lower
  /// and upper bound assuming uniform density. The first bucket's lower
  /// bound is taken as 0 when its top is positive (latency-style
  /// histograms), otherwise as the top itself (no interpolation).
  /// Observations in the overflow bucket clamp to the highest finite
  /// bound — a known, documented bias of bucketed quantiles. Returns NaN
  /// when the histogram is empty; q is clamped to [0, 1].
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
};

/// Point-in-time copy of the whole registry, name-sorted within each kind.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class MetricsRegistry {
 public:
  /// The process-wide registry the AQ_* macros feed.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Throws std::invalid_argument if `name` was registered before with
  /// different bounds, or if bounds are empty / not strictly ascending.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& upper_bounds);

  MetricsSnapshot snapshot() const;
  /// Zero every value, keeping all registrations (and references) alive.
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Default latency buckets (microseconds): 1us .. 10s, roughly 1-2-5.
const std::vector<double>& latency_buckets_us();

}  // namespace arbiterq::telemetry

#if ARBITERQ_TELEMETRY_ENABLED

#define AQ_COUNTER_ADD(name, delta)                                        \
  do {                                                                     \
    if (::arbiterq::telemetry::telemetry_runtime_enabled()) {              \
      static ::arbiterq::telemetry::Counter& aq_telemetry_ctr =            \
          ::arbiterq::telemetry::MetricsRegistry::global().counter(name);  \
      aq_telemetry_ctr.add(delta);                                         \
    }                                                                      \
  } while (0)

#define AQ_GAUGE_SET(name, value)                                          \
  do {                                                                     \
    if (::arbiterq::telemetry::telemetry_runtime_enabled()) {              \
      static ::arbiterq::telemetry::Gauge& aq_telemetry_gauge =            \
          ::arbiterq::telemetry::MetricsRegistry::global().gauge(name);    \
      aq_telemetry_gauge.set(value);                                       \
    }                                                                      \
  } while (0)

#define AQ_HISTOGRAM_OBSERVE(name, upper_bounds, value)                    \
  do {                                                                     \
    if (::arbiterq::telemetry::telemetry_runtime_enabled()) {              \
      static ::arbiterq::telemetry::Histogram& aq_telemetry_histo =        \
          ::arbiterq::telemetry::MetricsRegistry::global().histogram(      \
              name, upper_bounds);                                         \
      aq_telemetry_histo.observe(value);                                   \
    }                                                                      \
  } while (0)

#else  // ARBITERQ_TELEMETRY_ENABLED

#define AQ_COUNTER_ADD(name, delta) static_cast<void>(0)
#define AQ_GAUGE_SET(name, value) static_cast<void>(0)
#define AQ_HISTOGRAM_OBSERVE(name, upper_bounds, value) static_cast<void>(0)

#endif  // ARBITERQ_TELEMETRY_ENABLED
