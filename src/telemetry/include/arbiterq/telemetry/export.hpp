#pragma once
// Exporters: dump the metrics registry, the span ring buffer, and the
// training records as JSONL (one self-describing object per line, keyed
// by "type") or as report::CsvTable. Both share src/report's escaping
// and failure-reporting discipline.
//
// JSONL schema (schema version 1):
//   {"type":"meta","schema":1,"telemetry_enabled":true|false}
//   {"type":"counter","name":N,"value":V}
//   {"type":"gauge","name":N,"value":V}
//   {"type":"histogram","name":N,"count":C,"sum":S,
//    "bounds":[...],"buckets":[...]}              (buckets has one
//                                                  overflow entry more)
//   {"type":"span","name":N,"id":I,"parent":P,"depth":D,
//    "start_ns":S,"dur_ns":U,"thread":T}
//   {"type":"epoch","strategy":S,"epoch":E,"qpu":Q,"online":B,
//    "churned":B,"group":G,"group_size":Z,"loss":L,"grad_norm":R,
//    "shots_est":H}
//   {"type":"assignment","task":K,"torus":T,"score":S,"warmup_loss":W,
//    "loss":L,"split_qpu":[...],"split_shots":[...]}

#include <fstream>
#include <string>
#include <vector>

#include "arbiterq/report/csv.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/sink.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::telemetry {

/// Columns: kind,name,value,count,sum (histograms fold bounds/buckets
/// into a "le=...:n" summary string — CSV is for eyeballing, JSONL for
/// tooling).
report::CsvTable metrics_csv(const MetricsSnapshot& snapshot);

/// Columns: name,id,parent,depth,start_ns,dur_ns,thread.
report::CsvTable spans_csv(const std::vector<TraceEvent>& events);

/// Streaming JSONL exporter; also a TrainingTelemetry sink, so one
/// object can capture training records as they happen *and* dump the
/// global metrics/trace state at the end of a run:
///
///   telemetry::JsonlExporter tel("run.jsonl");   // writes the meta line
///   trainer.train(strategy, split, &tel);        // epoch lines
///   scheduler.run(tasks, &tel);                  // assignment lines
///   tel.write_global_state();                    // metrics + spans
///   tel.close();                                 // throws on I/O failure
class JsonlExporter final : public TrainingTelemetry {
 public:
  /// Opens `path` for writing and emits the meta line; throws
  /// std::runtime_error if the file cannot be opened.
  explicit JsonlExporter(const std::string& path);
  /// Best-effort close; failures here are swallowed (call close() first
  /// if you need the error).
  ~JsonlExporter() override;

  JsonlExporter(const JsonlExporter&) = delete;
  JsonlExporter& operator=(const JsonlExporter&) = delete;

  void on_epoch(const EpochQpuRecord& record) override;
  void on_assignment(const AssignmentRecord& record) override;

  void write_metrics(const MetricsSnapshot& snapshot);
  void write_spans(const std::vector<TraceEvent>& events);
  /// Snapshot MetricsRegistry::global() and TraceBuffer::global() and
  /// write both.
  void write_global_state();

  /// Flushes and closes, throwing std::runtime_error on I/O failure.
  /// Idempotent; the destructor calls the non-throwing path.
  void close();

  const std::string& path() const noexcept { return path_; }
  std::size_t lines_written() const noexcept { return lines_; }

 private:
  void line(const std::string& object);

  std::string path_;
  std::ofstream os_;
  std::size_t lines_ = 0;
  bool closed_ = false;
};

}  // namespace arbiterq::telemetry
