#include "arbiterq/telemetry/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

namespace arbiterq::telemetry {

namespace {

std::int64_t window_index(double t_us, double window_us) {
  return static_cast<std::int64_t>(std::floor(t_us / window_us));
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

const char* series_kind_name(SeriesKind kind) noexcept {
  switch (kind) {
    case SeriesKind::kCounterRate: return "counter_rate";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistogram: return "histogram";
    case SeriesKind::kEvent: return "event";
  }
  return "unknown";
}

double SeriesSnapshot::rate(std::size_t i) const {
  if (i >= windows.size() || window_us <= 0.0) return 0.0;
  const double per_second = 1e6 / window_us;
  if (kind == SeriesKind::kCounterRate) {
    return windows[i].delta * per_second;
  }
  return static_cast<double>(windows[i].count) * per_second;
}

double SeriesSnapshot::quantile(std::size_t i, double q) const {
  if (kind != SeriesKind::kHistogram || i >= windows.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const SeriesWindow& w = windows[i];
  HistogramSnapshot h;
  h.upper_bounds = upper_bounds;
  h.bucket_counts = w.buckets;
  h.count = w.count;
  h.sum = w.sum;
  return h.quantile(q);
}

// ---------------------------------------------------------------------------
// Series

class TimeSeriesStore::Series {
 public:
  Series(std::string name, SeriesKind kind, std::vector<double> bounds,
         const TimeSeriesConfig& cfg)
      : name_(std::move(name)),
        kind_(kind),
        bounds_(std::move(bounds)),
        cfg_(cfg) {}

  const std::string& name() const noexcept { return name_; }
  SeriesKind kind() const noexcept { return kind_; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  bool matches(SeriesKind kind, const std::vector<double>& bounds) const {
    return kind == kind_ && bounds == bounds_;
  }

  void observe(double t_us, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    SeriesWindow& w = window_at(window_index(t_us, cfg_.window_us));
    fold_point(w, value);
    w.count += 1;
    w.sum += value;
    if (kind_ == SeriesKind::kHistogram) {
      std::size_t b = 0;
      while (b < bounds_.size() && value > bounds_[b]) ++b;
      w.buckets[b] += 1;
    }
    w.samples += 1;
  }

  void fold_counter(double t_us, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    SeriesWindow& w = window_at(window_index(t_us, cfg_.window_us));
    // A cumulative value that went backwards means the registry was
    // reset; restart the baseline instead of folding a negative delta.
    const double delta =
        (has_prev_ && value >= prev_value_) ? value - prev_value_ : value;
    prev_value_ = value;
    has_prev_ = true;
    w.delta += delta;
    fold_point(w, value);
    w.samples += 1;
  }

  void fold_gauge(double t_us, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    SeriesWindow& w = window_at(window_index(t_us, cfg_.window_us));
    fold_point(w, value);
    w.samples += 1;
  }

  void fold_histogram(double t_us, const HistogramSnapshot& h) {
    std::lock_guard<std::mutex> lock(mu_);
    SeriesWindow& w = window_at(window_index(t_us, cfg_.window_us));
    const bool reset =
        !prev_buckets_.empty() && (h.count < prev_count_ ||
                                   prev_buckets_.size() != h.bucket_counts.size());
    for (std::size_t b = 0; b < h.bucket_counts.size() && b < w.buckets.size();
         ++b) {
      const std::uint64_t prev =
          (reset || b >= prev_buckets_.size()) ? 0 : prev_buckets_[b];
      w.buckets[b] += h.bucket_counts[b] - std::min(prev, h.bucket_counts[b]);
    }
    const std::uint64_t prev_count = reset ? 0 : prev_count_;
    const double prev_sum = reset ? 0.0 : prev_sum_;
    w.count += h.count - std::min(prev_count, h.count);
    w.sum += h.sum - prev_sum;
    prev_buckets_ = h.bucket_counts;
    prev_count_ = h.count;
    prev_sum_ = h.sum;
    w.samples += 1;
  }

  SeriesSnapshot snapshot() const {
    SeriesSnapshot out;
    out.name = name_;
    out.kind = kind_;
    out.window_us = cfg_.window_us;
    out.upper_bounds = bounds_;
    std::lock_guard<std::mutex> lock(mu_);
    out.windows.reserve(windows_.size());
    for (const auto& [idx, w] : windows_) out.windows.push_back(w);
    return out;
  }

 private:
  void fold_point(SeriesWindow& w, double value) {
    if (w.samples == 0) {
      w.min = w.max = value;
    } else {
      w.min = std::min(w.min, value);
      w.max = std::max(w.max, value);
    }
    w.last = value;
  }

  SeriesWindow& window_at(std::int64_t idx) {
    // Hot-path cache: back-to-back observations almost always land in
    // the same window, so skip the map walk for repeats. Map nodes are
    // stable, so the pointer survives inserts; only eviction of the
    // cached window itself (handled below) invalidates it.
    if (last_window_ != nullptr && last_index_ == idx) {
      return *last_window_;
    }
    auto it = windows_.find(idx);
    if (it == windows_.end()) {
      SeriesWindow w;
      w.index = idx;
      if (kind_ == SeriesKind::kHistogram) {
        w.buckets.assign(bounds_.size() + 1, 0);
      }
      it = windows_.emplace(idx, std::move(w)).first;
      while (windows_.size() > cfg_.max_windows) {
        auto oldest = windows_.begin();
        if (last_window_ == &oldest->second) last_window_ = nullptr;
        const bool dropped_self = oldest == it;
        windows_.erase(oldest);
        if (dropped_self) {
          // The observation predates every retained window: fold it into
          // a scratch window that snapshots never see instead of
          // returning a dangling reference.
          discard_ = SeriesWindow{};
          discard_.index = idx;
          if (kind_ == SeriesKind::kHistogram) {
            discard_.buckets.assign(bounds_.size() + 1, 0);
          }
          return discard_;
        }
      }
    }
    last_index_ = idx;
    last_window_ = &it->second;
    return it->second;
  }

  const std::string name_;
  const SeriesKind kind_;
  const std::vector<double> bounds_;
  const TimeSeriesConfig cfg_;

  mutable std::mutex mu_;
  std::map<std::int64_t, SeriesWindow> windows_;
  std::int64_t last_index_ = 0;
  SeriesWindow* last_window_ = nullptr;
  SeriesWindow discard_;  ///< sink for observations older than retention
  // Previous cumulative sample, for the registry-difference paths.
  bool has_prev_ = false;
  double prev_value_ = 0.0;
  std::vector<std::uint64_t> prev_buckets_;
  std::uint64_t prev_count_ = 0;
  double prev_sum_ = 0.0;
};

// ---------------------------------------------------------------------------
// TimeSeriesStore

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig cfg) : cfg_(cfg) {
  if (cfg_.window_us <= 0.0) {
    throw std::invalid_argument("TimeSeriesStore: window_us must be > 0");
  }
  if (cfg_.max_windows == 0) {
    throw std::invalid_argument("TimeSeriesStore: max_windows must be > 0");
  }
}

TimeSeriesStore::~TimeSeriesStore() = default;

TimeSeriesStore::Series* TimeSeriesStore::series(
    const std::string& name, SeriesKind kind,
    const std::vector<double>& upper_bounds) {
  if (kind == SeriesKind::kHistogram) {
    if (upper_bounds.empty()) {
      throw std::invalid_argument("TimeSeriesStore: histogram needs bounds");
    }
    for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
      if (upper_bounds[i] <= upper_bounds[i - 1]) {
        throw std::invalid_argument(
            "TimeSeriesStore: bounds must be strictly ascending");
      }
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it != series_.end()) {
    if (!it->second->matches(kind, upper_bounds)) {
      throw std::invalid_argument("TimeSeriesStore: series '" + name +
                                  "' registered with a different shape");
    }
    return it->second.get();
  }
  if (series_.size() >= cfg_.max_series) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto s = std::make_unique<Series>(name, kind, upper_bounds, cfg_);
  Series* raw = s.get();
  series_.emplace(name, std::move(s));
  return raw;
}

void TimeSeriesStore::observe(Series* s, double t_us, double value) {
  if (s == nullptr) return;
  s->observe(t_us, value);
}

void TimeSeriesStore::observe(const std::string& name, double t_us,
                              double value) {
  observe(series(name, SeriesKind::kEvent), t_us, value);
}

void TimeSeriesStore::sample(const MetricsSnapshot& snap, double t_us) {
  for (const CounterSnapshot& c : snap.counters) {
    Series* s = series(c.name, SeriesKind::kCounterRate);
    if (s != nullptr) s->fold_counter(t_us, static_cast<double>(c.value));
  }
  for (const GaugeSnapshot& g : snap.gauges) {
    Series* s = series(g.name, SeriesKind::kGauge);
    if (s != nullptr) s->fold_gauge(t_us, g.value);
  }
  for (const HistogramSnapshot& h : snap.histograms) {
    Series* s = series(h.name, SeriesKind::kHistogram, h.upper_bounds);
    if (s != nullptr) s->fold_histogram(t_us, h);
  }
}

std::vector<SeriesSnapshot> TimeSeriesStore::snapshot(
    const std::string& filter) const {
  std::vector<const Series*> picked;
  {
    std::lock_guard<std::mutex> lock(mu_);
    picked.reserve(series_.size());
    for (const auto& [name, s] : series_) {
      if (filter.empty() || name.find(filter) != std::string::npos) {
        picked.push_back(s.get());
      }
    }
  }
  // Per-series snapshots are taken outside the map lock (each series has
  // its own mutex; the handles are stable for the store's lifetime).
  std::vector<SeriesSnapshot> out;
  out.reserve(picked.size());
  for (const Series* s : picked) out.push_back(s->snapshot());
  return out;
}

std::string TimeSeriesStore::to_json(const std::string& filter) const {
  const std::vector<SeriesSnapshot> all = snapshot(filter);
  std::string out;
  out.reserve(256 + all.size() * 256);
  out += "{\"window_us\": ";
  append_double(out, cfg_.window_us);
  out += ", \"max_windows\": " + std::to_string(cfg_.max_windows);
  out += ", \"series\": [";
  bool first_series = true;
  for (const SeriesSnapshot& s : all) {
    if (!first_series) out += ", ";
    first_series = false;
    out += "{\"name\": \"";
    append_escaped(out, s.name);
    out += "\", \"kind\": \"";
    out += series_kind_name(s.kind);
    out += "\", \"windows\": [";
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      const SeriesWindow& w = s.windows[i];
      if (i != 0) out += ", ";
      out += "{\"w\": " + std::to_string(w.index);
      out += ", \"t_us\": ";
      append_double(out, static_cast<double>(w.index) * s.window_us);
      switch (s.kind) {
        case SeriesKind::kCounterRate:
          out += ", \"delta\": ";
          append_double(out, w.delta);
          out += ", \"rate\": ";
          append_double(out, s.rate(i));
          break;
        case SeriesKind::kGauge:
          out += ", \"last\": ";
          append_double(out, w.last);
          out += ", \"min\": ";
          append_double(out, w.min);
          out += ", \"max\": ";
          append_double(out, w.max);
          break;
        case SeriesKind::kHistogram:
          // Order-independent fields only (see header): keeps the
          // virtual-clock document bit-stable across thread schedules.
          out += ", \"count\": " + std::to_string(w.count);
          out += ", \"min\": ";
          append_double(out, w.count != 0 ? w.min : 0.0);
          out += ", \"max\": ";
          append_double(out, w.count != 0 ? w.max : 0.0);
          out += ", \"p50\": ";
          append_double(out, s.quantile(i, 0.50));
          out += ", \"p99\": ";
          append_double(out, s.quantile(i, 0.99));
          break;
        case SeriesKind::kEvent:
          out += ", \"count\": " + std::to_string(w.count);
          out += ", \"rate\": ";
          append_double(out, s.rate(i));
          out += ", \"sum\": ";
          append_double(out, w.sum);
          out += ", \"min\": ";
          append_double(out, w.min);
          out += ", \"max\": ";
          append_double(out, w.max);
          break;
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::size_t TimeSeriesStore::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

// ---------------------------------------------------------------------------
// Collector

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Collector::Collector(TimeSeriesStore& store, MetricsRegistry& registry,
                     Options opts)
    : store_(store), registry_(registry), opts_(std::move(opts)) {
  if (!opts_.clock) opts_.clock = steady_now_us;
  if (opts_.cadence_us <= 0.0) opts_.cadence_us = 250'000.0;
}

Collector::~Collector() { stop(); }

void Collector::start() {
  if (running_) throw std::logic_error("Collector: already running");
  stop_requested_ = false;
  thread_ = std::thread(&Collector::run, this);
  running_ = true;
}

void Collector::stop() {
  if (!running_) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  running_ = false;
  // Close the run with a final sample so short-lived serving windows are
  // never lost between the last tick and stop().
  collect_once();
}

void Collector::collect_once() {
  if (opts_.pre_sample) opts_.pre_sample();
  store_.sample(registry_.snapshot(), opts_.clock());
  samples_.fetch_add(1, std::memory_order_relaxed);
  if (opts_.post_sample) opts_.post_sample();
}

void Collector::run() {
  const auto cadence = std::chrono::duration<double, std::micro>(
      opts_.cadence_us);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    lock.unlock();
    collect_once();
    lock.lock();
    cv_.wait_for(lock, cadence, [this] { return stop_requested_; });
  }
}

}  // namespace arbiterq::telemetry
