#include "arbiterq/math/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arbiterq::math {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty input");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double min_value(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min_value: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max_value: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t w) {
  if (w == 0) throw std::invalid_argument("moving_average: zero window");
  std::vector<double> out(xs.size());
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(w) / 2;
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(xs.size());
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - half);
    const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(n - 1, i + half);
    double s = 0.0;
    for (std::ptrdiff_t j = lo; j <= hi; ++j) s += xs[j];
    out[i] = s / static_cast<double>(hi - lo + 1);
  }
  return out;
}

double l2_norm(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x * x;
  return std::sqrt(s);
}

double l2_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("l2_distance: size mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(s);
}

}  // namespace arbiterq::math
