#include "arbiterq/math/matrix.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>

namespace arbiterq::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix multiply: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix add: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix subtract: shape mismatch");
  }
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  if (x.size() != cols_) {
    throw std::invalid_argument("Matrix apply: vector size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) acc += (*this)(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows_ != b.rows_ || a.cols_ != b.cols_) {
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 == m.cols() ? "" : ", ");
    }
    os << (r + 1 == m.rows() ? "]" : "\n");
  }
  return os;
}

}  // namespace arbiterq::math
