#include "arbiterq/math/dft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arbiterq::math {

std::vector<std::complex<double>> nudft(const std::vector<double>& positions,
                                        const std::vector<double>& values,
                                        std::size_t num_bins) {
  if (positions.empty() || positions.size() != values.size()) {
    throw std::invalid_argument("nudft: positions/values size mismatch");
  }
  const auto [lo_it, hi_it] =
      std::minmax_element(positions.begin(), positions.end());
  const double span = *hi_it - *lo_it;
  if (span <= 0.0) {
    throw std::invalid_argument("nudft: zero position span");
  }
  std::vector<std::complex<double>> out(num_bins);
  const double base = 2.0 * std::numbers::pi / span;
  for (std::size_t k = 0; k < num_bins; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t j = 0; j < positions.size(); ++j) {
      const double phase = -base * static_cast<double>(k) * positions[j];
      acc += values[j] * std::complex<double>(std::cos(phase), std::sin(phase));
    }
    out[k] = acc;
  }
  return out;
}

DominantCycle dominant_cycle(const std::vector<double>& positions,
                             const std::vector<double>& values,
                             std::size_t num_bins) {
  if (num_bins == 0) num_bins = positions.size();
  if (num_bins < 2) {
    throw std::invalid_argument("dominant_cycle: need at least 2 bins");
  }
  const auto spectrum = nudft(positions, values, num_bins);
  DominantCycle cycle;
  cycle.frequency_index = 1;
  cycle.magnitude = std::abs(spectrum[1]);
  for (std::size_t k = 2; k < spectrum.size(); ++k) {
    const double mag = std::abs(spectrum[k]);
    if (mag > cycle.magnitude) {
      cycle.magnitude = mag;
      cycle.frequency_index = k;
    }
  }
  const auto [lo_it, hi_it] =
      std::minmax_element(positions.begin(), positions.end());
  cycle.period = (*hi_it - *lo_it) / static_cast<double>(cycle.frequency_index);
  return cycle;
}

}  // namespace arbiterq::math
