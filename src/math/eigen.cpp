#include "arbiterq/math/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace arbiterq::math {

namespace {

double off_diagonal_norm(const Matrix& a) {
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (r != c) s += a(r, c) * a(r, c);
    }
  }
  return std::sqrt(s);
}

}  // namespace

EigenResult eigen_symmetric(const Matrix& a, double sym_tol, int max_sweeps) {
  if (!a.is_symmetric(sym_tol)) {
    throw std::invalid_argument("eigen_symmetric: matrix is not symmetric");
  }
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  const double tol = 1e-13 * std::max(1.0, off_diagonal_norm(a));
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(d) <= tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Numerically stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

  EigenResult out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = d(order[k], order[k]);
    for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
  }
  return out;
}

}  // namespace arbiterq::math
