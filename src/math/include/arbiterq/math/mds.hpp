#pragma once
// Classical multidimensional scaling (Torgerson MDS). ArbiterQ (§IV-A)
// reduces the behavioral-vector space and the model-vector space to
// one-dimensional sequences that approximately preserve pairwise
// distances, as the first step of torus construction.

#include <cstddef>
#include <vector>

#include "arbiterq/math/matrix.hpp"

namespace arbiterq::math {

/// Pairwise Euclidean distance matrix of n points given as rows of `points`.
Matrix pairwise_distances(const std::vector<std::vector<double>>& points);

/// Classical MDS embedding into `dim` dimensions from a symmetric distance
/// matrix. Returns an n x dim matrix of coordinates. Eigenvalues that are
/// negative (non-Euclidean distances) are clamped to zero.
Matrix mds_embed(const Matrix& distances, std::size_t dim);

/// Convenience: 1-D MDS coordinates (column 0 of mds_embed(d, 1)).
std::vector<double> mds_embed_1d(const Matrix& distances);

/// Stress-1 goodness-of-fit of an embedding against target distances:
/// sqrt( sum (d_ij - dhat_ij)^2 / sum d_ij^2 ), over i<j. 0 = perfect.
double mds_stress(const Matrix& distances, const Matrix& embedding);

}  // namespace arbiterq::math
