#pragma once
// Dense real matrix with the small set of operations the ArbiterQ stack
// needs (MDS double-centering, PCA covariance, eigen decomposition).
// Row-major storage; sizes are fixed at construction.

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace arbiterq::math {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Build from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Contiguous row-major storage (size rows()*cols()).
  const std::vector<double>& data() const noexcept { return data_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator*=(double s);

  /// y = A x (x.size() must equal cols()).
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace arbiterq::math
