#pragma once
// Non-uniform discrete Fourier transform over irregularly spaced sample
// positions, plus the dominant-period extraction ArbiterQ's torus builder
// uses (paper Eq. 2 and Eq. 3): the 1-D model sequence {m_t} is treated as
// a signal sampled at the 1-D behavioral positions {b_j}; the frequency
// bin with the largest magnitude defines the cycle period
//   T = (max b - min b) / argmax_k |F_m[k]|.

#include <complex>
#include <cstddef>
#include <vector>

namespace arbiterq::math {

/// F[k] = sum_j values[j] * exp(-i * 2*pi/(max(pos)-min(pos)) * k * pos[j])
/// evaluated for k = 0 .. num_bins-1. `positions` and `values` must have the
/// same nonzero length and a nonzero position span.
std::vector<std::complex<double>> nudft(const std::vector<double>& positions,
                                        const std::vector<double>& values,
                                        std::size_t num_bins);

struct DominantCycle {
  std::size_t frequency_index = 0;  ///< argmax over k >= 1 of |F[k]|
  double period = 0.0;              ///< span / frequency_index (Eq. 3)
  double magnitude = 0.0;           ///< |F[frequency_index]|
};

/// Dominant cycle of the (positions, values) signal. The DC bin (k = 0) is
/// excluded: it carries the signal mean and has no period. `num_bins`
/// defaults to the number of samples when 0.
DominantCycle dominant_cycle(const std::vector<double>& positions,
                             const std::vector<double>& values,
                             std::size_t num_bins = 0);

}  // namespace arbiterq::math
