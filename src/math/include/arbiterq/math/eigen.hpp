#pragma once
// Symmetric eigensolver (cyclic Jacobi rotations). Sufficient for the
// small Gram/covariance matrices MDS and PCA produce (n = number of QPUs
// or number of features, both <= a few hundred).

#include <vector>

#include "arbiterq/math/matrix.hpp"

namespace arbiterq::math {

struct EigenResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> values;
  /// Column k of `vectors` is the unit eigenvector for values[k].
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix.
/// Throws std::invalid_argument if `a` is not symmetric within `sym_tol`.
EigenResult eigen_symmetric(const Matrix& a, double sym_tol = 1e-9,
                            int max_sweeps = 100);

}  // namespace arbiterq::math
