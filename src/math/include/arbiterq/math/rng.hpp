#pragma once
// Deterministic, splittable random number generator (xoshiro256**).
// Every stochastic component in the stack (dataset synthesis, weight
// initialization, shot sampling, trajectory noise) draws from an Rng seeded
// through a named split so experiments are reproducible bit-for-bit and
// independent components never share a stream.

#include <cstdint>
#include <string_view>

namespace arbiterq::math {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent stream, e.g. rng.split("qpu-3/shots").
  Rng split(std::string_view label) const noexcept;
  Rng split(std::uint64_t salt) const noexcept;

  std::uint64_t next_u64() noexcept;

  /// Uniform in [0, 1).
  double uniform() noexcept;
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Standard normal via Box-Muller.
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace arbiterq::math
