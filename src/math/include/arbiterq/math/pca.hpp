#pragma once
// Principal component analysis over real feature vectors. The QNN data
// pipeline compresses d-dimensional classical features to n_qubits angle
// parameters (Table II: 13 Wine features -> 4 qubits, 64 MNIST pixels ->
// 6 qubits, ...), which is the standard angle-encoding preprocessing.

#include <cstddef>
#include <vector>

#include "arbiterq/math/matrix.hpp"

namespace arbiterq::math {

class Pca {
 public:
  /// Fit on samples (rows = samples, each of equal length) and keep the
  /// top `components` principal directions.
  Pca(const std::vector<std::vector<double>>& samples, std::size_t components);

  /// Project one sample onto the kept components (centered first).
  std::vector<double> transform(const std::vector<double>& sample) const;

  std::vector<std::vector<double>> transform_all(
      const std::vector<std::vector<double>>& samples) const;

  std::size_t input_dim() const noexcept { return mean_.size(); }
  std::size_t output_dim() const noexcept { return basis_.rows(); }

  /// Fraction of total variance captured by the kept components, in [0, 1].
  double explained_variance_ratio() const noexcept { return explained_; }

 private:
  std::vector<double> mean_;
  Matrix basis_;  // output_dim x input_dim, rows are principal directions
  double explained_ = 0.0;
};

}  // namespace arbiterq::math
