#pragma once
// Small statistics helpers shared by the trainers, the convergence
// detector and the benchmark harnesses.

#include <cstddef>
#include <vector>

namespace arbiterq::math {

double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 points.
double stddev(const std::vector<double>& xs);

double min_value(const std::vector<double>& xs);
double max_value(const std::vector<double>& xs);

/// Centered moving average with window `w` (clamped at the edges).
std::vector<double> moving_average(const std::vector<double>& xs,
                                   std::size_t w);

/// Euclidean norm.
double l2_norm(const std::vector<double>& xs);

/// Euclidean distance between equal-length vectors.
double l2_distance(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace arbiterq::math
