#include "arbiterq/math/pca.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arbiterq/math/eigen.hpp"

namespace arbiterq::math {

Pca::Pca(const std::vector<std::vector<double>>& samples,
         std::size_t components) {
  if (samples.empty()) throw std::invalid_argument("Pca: empty sample set");
  const std::size_t n = samples.size();
  const std::size_t d = samples[0].size();
  if (components == 0 || components > d) {
    throw std::invalid_argument("Pca: invalid component count");
  }

  mean_.assign(d, 0.0);
  for (const auto& s : samples) {
    if (s.size() != d) throw std::invalid_argument("Pca: ragged samples");
    for (std::size_t k = 0; k < d; ++k) mean_[k] += s[k];
  }
  for (double& m : mean_) m /= static_cast<double>(n);

  Matrix cov(d, d);
  for (const auto& s : samples) {
    for (std::size_t i = 0; i < d; ++i) {
      const double xi = s[i] - mean_[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += xi * (s[j] - mean_[j]);
      }
    }
  }
  const double denom = static_cast<double>(n > 1 ? n - 1 : 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }

  const EigenResult eig = eigen_symmetric(cov);
  basis_ = Matrix(components, d);
  double kept = 0.0;
  double total = 0.0;
  for (std::size_t k = 0; k < d; ++k) total += std::max(0.0, eig.values[k]);
  for (std::size_t k = 0; k < components; ++k) {
    kept += std::max(0.0, eig.values[k]);
    for (std::size_t i = 0; i < d; ++i) basis_(k, i) = eig.vectors(i, k);
  }
  explained_ = total > 0.0 ? kept / total : 1.0;
}

std::vector<double> Pca::transform(const std::vector<double>& sample) const {
  if (sample.size() != mean_.size()) {
    throw std::invalid_argument("Pca::transform: dimension mismatch");
  }
  std::vector<double> centered(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    centered[i] = sample[i] - mean_[i];
  }
  return basis_.apply(centered);
}

std::vector<std::vector<double>> Pca::transform_all(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(transform(s));
  return out;
}

}  // namespace arbiterq::math
