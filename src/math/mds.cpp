#include "arbiterq/math/mds.hpp"

#include <cmath>
#include <stdexcept>

#include "arbiterq/math/eigen.hpp"

namespace arbiterq::math {

Matrix pairwise_distances(const std::vector<std::vector<double>>& points) {
  const std::size_t n = points.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (points[i].size() != points[0].size()) {
      throw std::invalid_argument("pairwise_distances: ragged point set");
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < points[i].size(); ++k) {
        const double diff = points[i][k] - points[j][k];
        s += diff * diff;
      }
      d(i, j) = d(j, i) = std::sqrt(s);
    }
  }
  return d;
}

Matrix mds_embed(const Matrix& distances, std::size_t dim) {
  if (distances.rows() != distances.cols()) {
    throw std::invalid_argument("mds_embed: distance matrix must be square");
  }
  const std::size_t n = distances.rows();
  if (dim == 0 || dim > n) {
    throw std::invalid_argument("mds_embed: invalid target dimension");
  }

  // B = -1/2 * J D^2 J with J = I - 11^T/n (double centering).
  Matrix d2(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d2(i, j) = distances(i, j) * distances(i, j);
    }
  }
  std::vector<double> row_mean(n, 0.0);
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += d2(i, j);
    row_mean[i] /= static_cast<double>(n);
    grand += row_mean[i];
  }
  grand /= static_cast<double>(n);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b(i, j) = -0.5 * (d2(i, j) - row_mean[i] - row_mean[j] + grand);
    }
  }
  // Symmetrize against rounding before the eigensolver.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (b(i, j) + b(j, i));
      b(i, j) = b(j, i) = avg;
    }
  }

  const EigenResult eig = eigen_symmetric(b);
  Matrix coords(n, dim);
  for (std::size_t k = 0; k < dim; ++k) {
    const double lambda = std::max(0.0, eig.values[k]);
    const double scale = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      coords(i, k) = scale * eig.vectors(i, k);
    }
  }
  return coords;
}

std::vector<double> mds_embed_1d(const Matrix& distances) {
  const Matrix coords = mds_embed(distances, 1);
  std::vector<double> out(coords.rows());
  for (std::size_t i = 0; i < coords.rows(); ++i) out[i] = coords(i, 0);
  return out;
}

double mds_stress(const Matrix& distances, const Matrix& embedding) {
  if (distances.rows() != embedding.rows()) {
    throw std::invalid_argument("mds_stress: size mismatch");
  }
  const std::size_t n = distances.rows();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < embedding.cols(); ++k) {
        const double diff = embedding(i, k) - embedding(j, k);
        s += diff * diff;
      }
      const double dhat = std::sqrt(s);
      num += (distances(i, j) - dhat) * (distances(i, j) - dhat);
      den += distances(i, j) * distances(i, j);
    }
  }
  return den == 0.0 ? 0.0 : std::sqrt(num / den);
}

}  // namespace arbiterq::math
