#include "arbiterq/math/rng.hpp"

#include <cmath>
#include <numbers>

namespace arbiterq::math {

namespace {

// splitmix64: seeds the xoshiro state and hashes split labels.
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& st : state_) st = splitmix64(s);
}

Rng Rng::split(std::string_view label) const noexcept {
  return split(fnv1a(label));
}

Rng Rng::split(std::uint64_t salt) const noexcept {
  // Mix current state with the salt into a fresh seed; const_cast-free by
  // hashing a copy of the state words.
  std::uint64_t mix = salt;
  std::uint64_t acc = splitmix64(mix);
  for (std::uint64_t st : state_) {
    std::uint64_t t = st ^ acc;
    acc ^= splitmix64(t);
  }
  return Rng(acc);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Rejection-free modulo is fine here: n is tiny relative to 2^64 in all
  // call sites (qubit indices, shot bucket picks), so bias is negligible.
  return next_u64() % n;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace arbiterq::math
