#pragma once
// End-to-end data preparation: split -> PCA to the qubit count -> angle
// scaling to [0, pi], with PCA and the scaler fitted on the training
// split only. Also the Table II benchmark roster (dataset, qubit count,
// layer count) that every evaluation binary iterates over.

#include <cstdint>
#include <string>
#include <vector>

#include "arbiterq/data/dataset.hpp"
#include "arbiterq/data/synthetic.hpp"

namespace arbiterq::data {

struct EncodedSplit {
  std::string name;
  int num_qubits = 0;
  std::vector<std::vector<double>> train_features;  ///< radians, [0, pi]
  std::vector<int> train_labels;
  std::vector<std::vector<double>> test_features;
  std::vector<int> test_labels;
};

/// 80/20 split (paper §V-A), PCA compression to `num_qubits` features and
/// angle scaling. Deterministic in `seed`.
EncodedSplit prepare(const Dataset& dataset, int num_qubits,
                     double train_fraction = 0.8, std::uint64_t seed = 7);

/// One Table II row: dataset constructor + QNN shape.
struct BenchmarkCase {
  std::string dataset;  ///< "iris" | "wine" | "mnist" | "hmdb51"
  int num_qubits = 2;
  int num_layers = 2;  ///< 2*num_qubits*num_layers = Table II weights
};

/// All four Table II rows: iris(2q), wine(4q), mnist(6q), hmdb51(10q, 10
/// layers -> 200 weights).
std::vector<BenchmarkCase> table2_cases();

/// Build + prepare the dataset of one benchmark case.
EncodedSplit prepare_case(const BenchmarkCase& bc, std::uint64_t seed = 7);

}  // namespace arbiterq::data
