#pragma once
// Seeded synthetic stand-ins for the paper's four benchmarks (Table II).
// We do not ship the original data files; each generator produces a
// two-class Gaussian mixture with the paper's exact sample and feature
// counts, a controlled class separation, and a fraction of purely noisy
// dimensions — preserving the optimization-landscape characteristics
// (dimensionality, signal-to-noise) that the measured quantities
// (convergence epoch, converged loss) depend on. See DESIGN.md,
// "Substitutions".

#include <cstdint>

#include "arbiterq/data/dataset.hpp"

namespace arbiterq::data {

struct SyntheticSpec {
  std::string name;
  std::size_t num_samples = 100;
  std::size_t num_features = 4;
  /// Distance between class means per informative dimension, in units of
  /// the within-class standard deviation.
  double separation = 2.0;
  /// Fraction of dimensions carrying no class signal.
  double noise_dims_fraction = 0.25;
  std::uint64_t seed = 1;
};

/// Generate a two-class Gaussian mixture per the spec (balanced classes).
Dataset make_synthetic(const SyntheticSpec& spec);

/// Table II rows: 100x4 (Iris), 114x13 (Wine), 100x64 (MNIST 8x8-like),
/// 100x108 (HMDB51 descriptor-like).
Dataset iris_like(std::uint64_t seed = 11);
Dataset wine_like(std::uint64_t seed = 13);
Dataset mnist_like(std::uint64_t seed = 21);
Dataset hmdb51_like(std::uint64_t seed = 22);

}  // namespace arbiterq::data
