#pragma once
// Labeled classical datasets and the train/test split used throughout the
// evaluation (80/20, §V-A).

#include <cstdint>
#include <string>
#include <vector>

#include "arbiterq/math/rng.hpp"

namespace arbiterq::data {

struct Dataset {
  std::string name;
  std::vector<std::vector<double>> samples;  ///< rows of equal length
  std::vector<int> labels;                   ///< 0 or 1

  std::size_t size() const noexcept { return samples.size(); }
  std::size_t num_features() const {
    return samples.empty() ? 0 : samples[0].size();
  }

  /// Throws std::invalid_argument if rows are ragged, labels mismatch or
  /// any label is not 0/1.
  void validate() const;
};

struct Split {
  Dataset train;
  Dataset test;
};

/// Shuffled split with the given training fraction (at least one sample
/// on each side). Deterministic under `rng`.
Split train_test_split(const Dataset& d, double train_fraction,
                       math::Rng rng);

/// Deterministic minibatch: indices of batch `b` of size `batch_size`
/// over an epoch-shuffled order.
std::vector<std::size_t> minibatch_indices(std::size_t dataset_size,
                                           std::size_t batch_size,
                                           std::size_t batch_index,
                                           math::Rng rng);

}  // namespace arbiterq::data
