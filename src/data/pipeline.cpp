#include "arbiterq/data/pipeline.hpp"

#include <stdexcept>

#include "arbiterq/math/pca.hpp"
#include "arbiterq/qnn/encoding.hpp"

namespace arbiterq::data {

EncodedSplit prepare(const Dataset& dataset, int num_qubits,
                     double train_fraction, std::uint64_t seed) {
  if (num_qubits < 1 ||
      static_cast<std::size_t>(num_qubits) > dataset.num_features()) {
    throw std::invalid_argument("prepare: qubit count vs features mismatch");
  }
  const Split split = train_test_split(dataset, train_fraction,
                                       math::Rng(seed).split("split"));

  const math::Pca pca(split.train.samples,
                      static_cast<std::size_t>(num_qubits));
  const auto train_compressed = pca.transform_all(split.train.samples);
  const auto test_compressed = pca.transform_all(split.test.samples);

  const qnn::FeatureScaler scaler(train_compressed);

  EncodedSplit out;
  out.name = dataset.name;
  out.num_qubits = num_qubits;
  out.train_features = scaler.transform_all(train_compressed);
  out.train_labels = split.train.labels;
  out.test_features = scaler.transform_all(test_compressed);
  out.test_labels = split.test.labels;
  return out;
}

std::vector<BenchmarkCase> table2_cases() {
  return {
      {"iris", 2, 2},     // 8 weights
      {"wine", 4, 2},     // 16 weights
      {"mnist", 6, 2},    // 24 weights
      {"hmdb51", 10, 10}  // 200 weights
  };
}

EncodedSplit prepare_case(const BenchmarkCase& bc, std::uint64_t seed) {
  Dataset d;
  if (bc.dataset == "iris") {
    d = iris_like();
  } else if (bc.dataset == "wine") {
    d = wine_like();
  } else if (bc.dataset == "mnist") {
    d = mnist_like();
  } else if (bc.dataset == "hmdb51") {
    d = hmdb51_like();
  } else {
    throw std::invalid_argument("prepare_case: unknown dataset " +
                                bc.dataset);
  }
  return prepare(d, bc.num_qubits, 0.8, seed);
}

}  // namespace arbiterq::data
