#include "arbiterq/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arbiterq::data {

Dataset make_synthetic(const SyntheticSpec& spec) {
  if (spec.num_samples < 2 || spec.num_features == 0) {
    throw std::invalid_argument("make_synthetic: degenerate spec");
  }
  math::Rng rng = math::Rng(spec.seed).split("synthetic/" + spec.name);

  const std::size_t d = spec.num_features;
  const auto noisy = static_cast<std::size_t>(
      spec.noise_dims_fraction * static_cast<double>(d));
  const std::size_t informative = d - std::min(noisy, d);

  // Class means: +/- separation/2 on informative dims with a random
  // per-dimension orientation so no single dimension dominates.
  std::vector<double> direction(d, 0.0);
  for (std::size_t k = 0; k < informative; ++k) {
    direction[k] = rng.bernoulli(0.5) ? 1.0 : -1.0;
  }
  // Random per-dimension scales mimic heterogeneous feature units.
  std::vector<double> scale(d);
  for (std::size_t k = 0; k < d; ++k) scale[k] = rng.uniform(0.5, 2.0);

  Dataset out;
  out.name = spec.name;
  out.samples.reserve(spec.num_samples);
  out.labels.reserve(spec.num_samples);
  for (std::size_t i = 0; i < spec.num_samples; ++i) {
    const int label = i % 2 == 0 ? 0 : 1;  // balanced classes
    const double sign = label == 0 ? -0.5 : 0.5;
    std::vector<double> x(d);
    for (std::size_t k = 0; k < d; ++k) {
      const double mean = direction[k] * sign * spec.separation;
      x[k] = scale[k] * (mean + rng.normal());
    }
    out.samples.push_back(std::move(x));
    out.labels.push_back(label);
  }
  out.validate();
  return out;
}

Dataset iris_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "iris";
  spec.num_samples = 100;
  spec.num_features = 4;
  spec.separation = 2.5;  // Iris setosa/versicolor are nearly separable
  spec.noise_dims_fraction = 0.0;
  spec.seed = seed;
  return make_synthetic(spec);
}

Dataset wine_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "wine";
  spec.num_samples = 114;
  spec.num_features = 13;
  spec.separation = 1.2;  // harder task: overlapping classes
  spec.noise_dims_fraction = 0.4;
  spec.seed = seed;
  return make_synthetic(spec);
}

Dataset mnist_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "mnist";
  spec.num_samples = 100;
  spec.num_features = 64;
  spec.separation = 1.6;
  spec.noise_dims_fraction = 0.5;
  spec.seed = seed;
  return make_synthetic(spec);
}

Dataset hmdb51_like(std::uint64_t seed) {
  SyntheticSpec spec;
  spec.name = "hmdb51";
  spec.num_samples = 100;
  spec.num_features = 108;
  spec.separation = 1.4;
  spec.noise_dims_fraction = 0.6;
  spec.seed = seed;
  return make_synthetic(spec);
}

}  // namespace arbiterq::data
