#include "arbiterq/data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace arbiterq::data {

void Dataset::validate() const {
  if (samples.size() != labels.size()) {
    throw std::invalid_argument("Dataset: samples/labels size mismatch");
  }
  const std::size_t d = num_features();
  for (const auto& s : samples) {
    if (s.size() != d) throw std::invalid_argument("Dataset: ragged rows");
  }
  for (int l : labels) {
    if (l != 0 && l != 1) {
      throw std::invalid_argument("Dataset: labels must be 0/1");
    }
  }
}

Split train_test_split(const Dataset& d, double train_fraction,
                       math::Rng rng) {
  d.validate();
  if (d.size() < 2) {
    throw std::invalid_argument("train_test_split: need >= 2 samples");
  }
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be (0,1)");
  }
  std::vector<std::size_t> order(d.size());
  std::iota(order.begin(), order.end(), 0);
  // Fisher-Yates with our deterministic rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(order[i - 1], order[j]);
  }
  std::size_t n_train = static_cast<std::size_t>(
      train_fraction * static_cast<double>(d.size()) + 0.5);
  n_train = std::clamp<std::size_t>(n_train, 1, d.size() - 1);

  Split split;
  split.train.name = d.name + "/train";
  split.test.name = d.name + "/test";
  for (std::size_t i = 0; i < d.size(); ++i) {
    Dataset& dst = i < n_train ? split.train : split.test;
    dst.samples.push_back(d.samples[order[i]]);
    dst.labels.push_back(d.labels[order[i]]);
  }
  return split;
}

std::vector<std::size_t> minibatch_indices(std::size_t dataset_size,
                                           std::size_t batch_size,
                                           std::size_t batch_index,
                                           math::Rng rng) {
  if (dataset_size == 0 || batch_size == 0) {
    throw std::invalid_argument("minibatch_indices: empty input");
  }
  std::vector<std::size_t> order(dataset_size);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = order.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(order[i - 1], order[j]);
  }
  std::vector<std::size_t> batch;
  const std::size_t start = (batch_index * batch_size) % dataset_size;
  for (std::size_t k = 0; k < std::min(batch_size, dataset_size); ++k) {
    batch.push_back(order[(start + k) % dataset_size]);
  }
  return batch;
}

}  // namespace arbiterq::data
