#include "arbiterq/qnn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace arbiterq::qnn {

namespace {
constexpr double kEps = 1e-9;
}

double loss_value(LossKind kind, double p, int label) {
  if (label != 0 && label != 1) {
    throw std::invalid_argument("loss_value: label must be 0 or 1");
  }
  const double y = static_cast<double>(label);
  switch (kind) {
    case LossKind::kMse:
      return (p - y) * (p - y);
    case LossKind::kCrossEntropy: {
      const double pc = std::clamp(p, kEps, 1.0 - kEps);
      return -(y * std::log(pc) + (1.0 - y) * std::log(1.0 - pc));
    }
  }
  throw std::logic_error("loss_value: unknown kind");
}

double loss_derivative(LossKind kind, double p, int label) {
  if (label != 0 && label != 1) {
    throw std::invalid_argument("loss_derivative: label must be 0 or 1");
  }
  const double y = static_cast<double>(label);
  switch (kind) {
    case LossKind::kMse:
      return 2.0 * (p - y);
    case LossKind::kCrossEntropy: {
      const double pc = std::clamp(p, kEps, 1.0 - kEps);
      return -(y / pc) + (1.0 - y) / (1.0 - pc);
    }
  }
  throw std::logic_error("loss_derivative: unknown kind");
}

double batch_loss(LossKind kind, const std::vector<double>& probs,
                  const std::vector<int>& labels) {
  if (probs.size() != labels.size() || probs.empty()) {
    throw std::invalid_argument("batch_loss: size mismatch or empty batch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    total += loss_value(kind, probs[i], labels[i]);
  }
  return total / static_cast<double>(probs.size());
}

double batch_accuracy(const std::vector<double>& probs,
                      const std::vector<int>& labels) {
  if (probs.size() != labels.size() || probs.empty()) {
    throw std::invalid_argument("batch_accuracy: size mismatch or empty");
  }
  std::size_t correct = 0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const int predicted = probs[i] >= 0.5 ? 1 : 0;
    if (predicted == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(probs.size());
}

}  // namespace arbiterq::qnn
