#include "arbiterq/qnn/encoding.hpp"

#include <algorithm>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace arbiterq::qnn {

FeatureScaler::FeatureScaler(
    const std::vector<std::vector<double>>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("FeatureScaler: empty sample set");
  }
  const std::size_t d = samples[0].size();
  lo_.assign(d, std::numeric_limits<double>::infinity());
  hi_.assign(d, -std::numeric_limits<double>::infinity());
  for (const auto& s : samples) {
    if (s.size() != d) {
      throw std::invalid_argument("FeatureScaler: ragged samples");
    }
    for (std::size_t k = 0; k < d; ++k) {
      lo_[k] = std::min(lo_[k], s[k]);
      hi_[k] = std::max(hi_[k], s[k]);
    }
  }
}

std::vector<double> FeatureScaler::transform(
    const std::vector<double>& sample) const {
  if (sample.size() != lo_.size()) {
    throw std::invalid_argument("FeatureScaler::transform: dim mismatch");
  }
  std::vector<double> out(sample.size());
  for (std::size_t k = 0; k < sample.size(); ++k) {
    const double span = hi_[k] - lo_[k];
    const double unit =
        span > 0.0 ? std::clamp((sample[k] - lo_[k]) / span, 0.0, 1.0) : 0.5;
    out[k] = unit * std::numbers::pi;
  }
  return out;
}

std::vector<std::vector<double>> FeatureScaler::transform_all(
    const std::vector<std::vector<double>>& samples) const {
  std::vector<std::vector<double>> out;
  out.reserve(samples.size());
  for (const auto& s : samples) out.push_back(transform(s));
  return out;
}

}  // namespace arbiterq::qnn
