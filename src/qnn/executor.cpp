#include "arbiterq/qnn/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

#include "arbiterq/qnn/gradient.hpp"
#include "arbiterq/sim/adjoint.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/trace.hpp"

namespace arbiterq::qnn {

QnnExecutor::QnnExecutor(QnnModel model, device::Qpu qpu,
                         ExecutorOptions options)
    : model_(std::move(model)),
      qpu_(std::move(qpu)),
      options_(options),
      compiled_(transpile::compile(model_.circuit(), qpu_)),
      simulator_(qpu_.make_noise_model()),
      readout_qubit_(compiled_.measure_qubit(0)),
      survival_(simulator_.noise().survival_probability(
          compiled_.executable)),
      depth_(compiled_.executable.depth()) {
  simulator_.set_exec_policy(options_.exec);
  rebuild_plan();
}

void QnnExecutor::rebuild_plan() {
  if (!options_.use_plan) {
    plan_ = nullptr;
    return;
  }
  AQ_COUNTER_ADD("qnn.plan.cache_misses", 1);
  plan_ = std::make_shared<const sim::ExecPlan>(
      simulator_.make_plan(compiled_.executable));
}

void QnnExecutor::recalibrate(double bias_drift_sigma, math::Rng& rng) {
  sim::NoiseModel drifted = simulator_.noise();
  if (!drifted.enabled()) return;
  for (int q = 0; q < drifted.num_qubits(); ++q) {
    drifted.set_coherent_bias(
        q, drifted.coherent_bias(q) + rng.normal(0.0, bias_drift_sigma));
  }
  simulator_ = sim::StatevectorSimulator(std::move(drifted));
  simulator_.set_exec_policy(options_.exec);
  // The plan baked the old biases into its fused constants and slot
  // specs — it is stale the moment the noise model changes.
  rebuild_plan();
}

double QnnExecutor::readout_contract(double p_one) const {
  const double p01 = noise().enabled() ? noise().readout_p01(readout_qubit_)
                                       : 0.0;
  const double p10 = noise().enabled() ? noise().readout_p10(readout_qubit_)
                                       : 0.0;
  return p_one * (1.0 - p10) + (1.0 - p_one) * p01;
}

void QnnExecutor::batched_probabilities(
    const std::vector<std::vector<double>>& features,
    const std::vector<double>& weights, std::size_t lo, std::size_t hi,
    sim::BatchedWorkspace& ws, double* out) const {
  const auto np = static_cast<std::size_t>(plan_->num_params());
  const auto nq = static_cast<std::size_t>(model_.num_qubits());
  for (std::size_t b0 = lo; b0 < hi; b0 += sim::kBatchBlock) {
    const std::size_t count = std::min(sim::kBatchBlock, hi - b0);
    ws.params.resize(count * np);
    for (std::size_t b = 0; b < count; ++b) {
      const std::vector<double>& f = features[b0 + b];
      if (f.size() != nq || weights.size() != np - nq) {
        throw std::invalid_argument("batched_probabilities: size mismatch");
      }
      // pack_params_into's layout: [features | weights], one binding per
      // column at stride np.
      double* const dst = ws.params.data() + b * np;
      std::copy(f.begin(), f.end(), dst);
      std::copy(weights.begin(), weights.end(), dst + nq);
    }
    ws.values.resize(count);
    AQ_COUNTER_ADD("qnn.forward.calls",
                   static_cast<std::uint64_t>(count));
    AQ_COUNTER_ADD("qnn.plan.cache_hits",
                   static_cast<std::uint64_t>(count));
    plan_->expectation_z_batched(ws.params.data(), np, count, readout_qubit_,
                                 ws, ws.values.data());
    for (std::size_t b = 0; b < count; ++b) {
      double z = ws.values[b];
      if (options_.mitigate_depolarizing && survival_ > 0.0) z /= survival_;
      out[b0 - lo + b] = readout_contract(0.5 * (1.0 - z));
    }
  }
}

double QnnExecutor::probability(const std::vector<double>& features,
                                const std::vector<double>& weights) const {
  AQ_COUNTER_ADD("qnn.forward.calls", 1);
  double z;
  if (plan_ != nullptr) {
    AQ_COUNTER_ADD("qnn.plan.cache_hits", 1);
    auto ws = workspaces_.acquire();
    model_.pack_params_into(features, weights, ws->params);
    z = plan_->expectation_z(ws->params, readout_qubit_, *ws);
  } else {
    const auto params = model_.pack_params(features, weights);
    z = simulator_.expectation_z(compiled_.executable, params, readout_qubit_,
                                 survival_);
  }
  if (options_.mitigate_depolarizing && survival_ > 0.0) z /= survival_;
  return readout_contract(0.5 * (1.0 - z));
}

double QnnExecutor::sampled_probability(const std::vector<double>& features,
                                        const std::vector<double>& weights,
                                        int shots, math::Rng& rng,
                                        int trajectories) const {
  AQ_TRACE_SPAN("qnn.sample.probability");
  const auto params = model_.pack_params(features, weights);
  sim::ShotOptions opts;
  opts.shots = shots;
  opts.trajectories = trajectories;
  // Readout flips are applied per shot inside the samplers.
  double p;
  if (plan_ != nullptr && options_.batched_forward) {
    // Trajectory-batched sampler: evolves trajectory blocks through one
    // BatchedStatevector with a batch-invariant pre-drawn RNG schedule.
    auto ws = batched_workspaces_.acquire();
    p = simulator_.sampled_probability_of_one(*plan_, params, readout_qubit_,
                                              opts, rng, *ws);
  } else {
    p = simulator_.sampled_probability_of_one(compiled_.executable, params,
                                              readout_qubit_, opts, rng);
  }
  if (!options_.mitigate_depolarizing || survival_ <= 0.0) return p;
  // Post-measurement rescaling: z -> z / S, clamped to physical range.
  const double z = std::clamp((1.0 - 2.0 * p) / survival_, -1.0, 1.0);
  return 0.5 * (1.0 - z);
}

double QnnExecutor::dataset_loss(
    LossKind kind, const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels,
    const std::vector<double>& weights) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("dataset_loss: bad dataset");
  }
  AQ_TRACE_SPAN("qnn.loss.dataset");
  // Independent circuit evaluations fan out across the pool (each run
  // owns its scratch Statevector); the sum stays a serial, index-ordered
  // barrier so the result is bit-identical to the sequential loop.
  std::vector<double> per_sample(features.size());
  exec::parallel_for(
      options_.exec, 0, features.size(), [&](std::size_t lo, std::size_t hi) {
        if (plan_ != nullptr && options_.batched_forward) {
          // Sample-batched forward: one register sweep serves a whole
          // block of samples (per-column arithmetic identical to the
          // unbatched plan path).
          auto ws = batched_workspaces_.acquire();
          std::vector<double> probs(hi - lo);
          batched_probabilities(features, weights, lo, hi, *ws, probs.data());
          for (std::size_t i = lo; i < hi; ++i) {
            per_sample[i] = loss_value(kind, probs[i - lo], labels[i]);
          }
          return;
        }
        for (std::size_t i = lo; i < hi; ++i) {
          per_sample[i] =
              loss_value(kind, probability(features[i], weights), labels[i]);
        }
      });
  double total = 0.0;
  for (double l : per_sample) total += l;
  return total / static_cast<double>(features.size());
}

std::vector<double> QnnExecutor::loss_gradient(
    LossKind kind, const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels,
    const std::vector<double>& weights) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("loss_gradient: bad dataset");
  }
  AQ_TRACE_SPAN("qnn.grad.adjoint");
  AQ_COUNTER_ADD("qnn.grad.calls", 1);
  const std::size_t w_count = weights.size();
  const std::size_t w_offset = static_cast<std::size_t>(model_.num_qubits());
  std::vector<double> grad(w_count, 0.0);
  const sim::NoiseModel* noise_ptr =
      noise().enabled() ? &simulator_.noise() : nullptr;
  double contraction =
      noise().enabled() ? 1.0 - noise().readout_p01(readout_qubit_) -
                              noise().readout_p10(readout_qubit_)
                        : 1.0;
  // Mitigation rescales <Z> (and hence its gradient) by 1/S.
  if (options_.mitigate_depolarizing && survival_ > 0.0) {
    contraction /= survival_;
  }
  // Per-sample adjoint runs are independent; each writes its own partial
  // vector, and the accumulation below folds them in sample order — the
  // same floating-point association as the serial loop, so gradients are
  // bit-identical for every thread count.
  std::vector<std::vector<double>> per_sample(features.size());
  exec::parallel_for(
      options_.exec, 0, features.size(),
      [&](std::size_t lo, std::size_t hi) {
        if (plan_ != nullptr && options_.batched_forward) {
          // Both halves sample-batched: the fused forward stream yields
          // p for the loss derivative (same stream the loss reports),
          // and the adjoint's gate-table forward runs as one batched
          // sweep per block with a per-column reverse sweep.
          auto bws = batched_workspaces_.acquire();
          std::vector<double> probs(hi - lo);
          batched_probabilities(features, weights, lo, hi, *bws, probs.data());
          const auto np = static_cast<std::size_t>(plan_->num_params());
          const auto nq = static_cast<std::size_t>(model_.num_qubits());
          std::vector<double> grads;
          for (std::size_t b0 = lo; b0 < hi; b0 += sim::kBatchBlock) {
            const std::size_t count = std::min(sim::kBatchBlock, hi - b0);
            bws->params.resize(count * np);
            for (std::size_t b = 0; b < count; ++b) {
              const std::vector<double>& f = features[b0 + b];
              double* const dst = bws->params.data() + b * np;
              std::copy(f.begin(), f.end(), dst);
              std::copy(weights.begin(), weights.end(), dst + nq);
            }
            grads.resize(count * np);
            sim::adjoint_gradient_z_batched(*plan_, bws->params.data(), np,
                                            count, readout_qubit_, *bws,
                                            grads.data());
            for (std::size_t b = 0; b < count; ++b) {
              const std::size_t i = b0 + b;
              const double dl_dp =
                  loss_derivative(kind, probs[i - lo], labels[i]);
              const double chain = dl_dp * contraction * -0.5;
              const double* const g = grads.data() + b * np;
              std::vector<double> contrib(w_count);
              for (std::size_t w = 0; w < w_count; ++w) {
                contrib[w] = chain * g[w_offset + w];
              }
              per_sample[i] = std::move(contrib);
            }
          }
          return;
        }
        if (plan_ != nullptr) {
          auto ws = workspaces_.acquire();
          ws->grad.resize(static_cast<std::size_t>(plan_->num_params()));
          for (std::size_t i = lo; i < hi; ++i) {
            // Same (possibly mitigated) objective the loss reports —
            // probability() inlined against this chunk's workspace so the
            // params are packed once for the forward and adjoint runs.
            AQ_COUNTER_ADD("qnn.forward.calls", 1);
            AQ_COUNTER_ADD("qnn.plan.cache_hits", 1);
            model_.pack_params_into(features[i], weights, ws->params);
            double z = plan_->expectation_z(ws->params, readout_qubit_, *ws);
            if (options_.mitigate_depolarizing && survival_ > 0.0) {
              z /= survival_;
            }
            const double p = readout_contract(0.5 * (1.0 - z));
            const double dl_dp = loss_derivative(kind, p, labels[i]);
            sim::adjoint_gradient_z(*plan_, ws->params, readout_qubit_, *ws,
                                    ws->grad);
            const double chain = dl_dp * contraction * -0.5;
            std::vector<double> contrib(w_count);
            for (std::size_t w = 0; w < w_count; ++w) {
              contrib[w] = chain * ws->grad[w_offset + w];
            }
            per_sample[i] = std::move(contrib);
          }
          return;
        }
        for (std::size_t i = lo; i < hi; ++i) {
          const auto params = model_.pack_params(features[i], weights);
          // Same (possibly mitigated) objective the loss reports.
          const double p = probability(features[i], weights);
          const double dl_dp = loss_derivative(kind, p, labels[i]);
          const auto dz = sim::adjoint_gradient_z(
              compiled_.executable, params, readout_qubit_, noise_ptr,
              survival_);
          // p_raw = (1 - <Z>)/2, then the readout contraction scales
          // dp/dw.
          const double chain = dl_dp * contraction * -0.5;
          std::vector<double> contrib(w_count);
          for (std::size_t w = 0; w < w_count; ++w) {
            contrib[w] = chain * dz[w_offset + w];
          }
          per_sample[i] = std::move(contrib);
        }
      });
  for (const auto& contrib : per_sample) {
    for (std::size_t w = 0; w < w_count; ++w) grad[w] += contrib[w];
  }
  const double inv_n = 1.0 / static_cast<double>(features.size());
  for (double& g : grad) g *= inv_n;
  return grad;
}

std::vector<double> QnnExecutor::loss_gradient_shift(
    LossKind kind, const std::vector<std::vector<double>>& features,
    const std::vector<int>& labels,
    const std::vector<double>& weights) const {
  if (features.size() != labels.size() || features.empty()) {
    throw std::invalid_argument("loss_gradient_shift: bad dataset");
  }
  AQ_TRACE_SPAN("qnn.grad.shift");
  AQ_COUNTER_ADD("qnn.grad.calls", 1);
  const auto rules = shift_rules();
  std::vector<double> grad(weights.size(), 0.0);
  // Every (sample, weight) shift circuit is independent: fan samples out
  // across the pool, each chunk shifting a private weight copy, then
  // fold the per-sample vectors in sample order (bit-identical to the
  // serial schedule).
  std::vector<std::vector<double>> per_sample(features.size());
  exec::parallel_for(
      options_.exec, 0, features.size(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> w = weights;
        for (std::size_t i = lo; i < hi; ++i) {
          const double p = probability(features[i], w);
          const double dl_dp = loss_derivative(kind, p, labels[i]);
          ScalarFn prob = [&](const std::vector<double>& wv) {
            return probability(features[i], wv);
          };
          std::vector<double> contrib(w.size());
          for (std::size_t j = 0; j < w.size(); ++j) {
            contrib[j] = dl_dp * parameter_shift_partial(prob, w, j, rules[j]);
          }
          per_sample[i] = std::move(contrib);
        }
      });
  for (const auto& contrib : per_sample) {
    for (std::size_t j = 0; j < grad.size(); ++j) grad[j] += contrib[j];
  }
  const double inv_n = 1.0 / static_cast<double>(features.size());
  for (double& g : grad) g *= inv_n;
  return grad;
}

std::vector<ShiftRule> QnnExecutor::shift_rules() const {
  std::vector<ShiftRule> rules(static_cast<std::size_t>(model_.num_weights()));
  for (int w = 0; w < model_.num_weights(); ++w) {
    rules[static_cast<std::size_t>(w)] = model_.shift_rule(w);
  }
  return rules;
}

double QnnExecutor::shot_latency_us() const {
  // depth() walks the dependency chain of the whole gate list — cached
  // once at construction (it is constant per compiled circuit).
  return qpu_.shot_latency_us(depth_);
}

double QnnExecutor::shot_rate() const { return qpu_.shot_rate(depth_); }

}  // namespace arbiterq::qnn
