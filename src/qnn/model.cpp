#include "arbiterq/qnn/model.hpp"

#include <stdexcept>

namespace arbiterq::qnn {

using circuit::Circuit;
using circuit::ParamExpr;

std::string backbone_name(Backbone b) {
  switch (b) {
    case Backbone::kCRz:
      return "Model-CRz";
    case Backbone::kCRx:
      return "Model-CRx";
  }
  throw std::logic_error("backbone_name: unknown backbone");
}

QnnModel::QnnModel(Backbone backbone, int num_qubits, int num_layers)
    : backbone_(backbone), num_qubits_(num_qubits), num_layers_(num_layers) {
  if (num_qubits < 2) {
    throw std::invalid_argument("QnnModel: need at least 2 qubits");
  }
  if (num_layers < 1) {
    throw std::invalid_argument("QnnModel: need at least 1 layer");
  }
  circuit_ = build();
}

Circuit QnnModel::build() const {
  Circuit c(num_qubits_, num_params());
  // Encoding layer: one RY per qubit, angle = feature (already scaled to
  // [0, pi] by FeatureScaler).
  for (int q = 0; q < num_qubits_; ++q) {
    c.ry(q, ParamExpr::ref(q));
  }
  int w = num_qubits_;  // next parameter index
  for (int layer = 0; layer < num_layers_; ++layer) {
    for (int q = 0; q < num_qubits_; ++q) {
      c.ry(q, ParamExpr::ref(w++));
    }
    for (int q = 0; q < num_qubits_; ++q) {
      const int target = (q + 1) % num_qubits_;
      if (backbone_ == Backbone::kCRz) {
        c.crz(q, target, ParamExpr::ref(w++));
      } else {
        c.crx(q, target, ParamExpr::ref(w++));
      }
    }
  }
  return c;
}

ShiftRule QnnModel::shift_rule(int w) const {
  if (w < 0 || w >= num_weights()) {
    throw std::out_of_range("QnnModel::shift_rule: weight out of range");
  }
  // Within each layer, the first num_qubits weights drive RY gates and
  // the next num_qubits drive the controlled ring.
  const int within_layer = w % (2 * num_qubits_);
  return within_layer < num_qubits_ ? ShiftRule::kTwoTerm
                                    : ShiftRule::kFourTerm;
}

std::vector<double> QnnModel::pack_params(
    const std::vector<double>& features,
    const std::vector<double>& weights) const {
  std::vector<double> p;
  pack_params_into(features, weights, p);
  return p;
}

void QnnModel::pack_params_into(const std::vector<double>& features,
                                const std::vector<double>& weights,
                                std::vector<double>& out) const {
  if (static_cast<int>(features.size()) != num_qubits_) {
    throw std::invalid_argument("pack_params: feature size mismatch");
  }
  if (static_cast<int>(weights.size()) != num_weights()) {
    throw std::invalid_argument("pack_params: weight size mismatch");
  }
  out.clear();
  out.reserve(features.size() + weights.size());
  out.insert(out.end(), features.begin(), features.end());
  out.insert(out.end(), weights.begin(), weights.end());
}

}  // namespace arbiterq::qnn
