#include "arbiterq/qnn/gradient.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace arbiterq::qnn {

namespace {
constexpr double kHalfPi = std::numbers::pi / 2.0;
constexpr double kThreeHalfPi = 3.0 * std::numbers::pi / 2.0;
const double kC1 = (std::numbers::sqrt2 + 1.0) / (4.0 * std::numbers::sqrt2);
const double kC2 = (std::numbers::sqrt2 - 1.0) / (4.0 * std::numbers::sqrt2);
}  // namespace

double parameter_shift_partial(const ScalarFn& f,
                               std::vector<double>& weights, std::size_t i,
                               ShiftRule rule) {
  if (i >= weights.size()) {
    throw std::out_of_range("parameter_shift_partial: index out of range");
  }
  const double w0 = weights[i];
  auto eval_at = [&](double shift) {
    weights[i] = w0 + shift;
    return f(weights);
  };
  double grad = 0.0;
  switch (rule) {
    case ShiftRule::kTwoTerm:
      grad = 0.5 * (eval_at(kHalfPi) - eval_at(-kHalfPi));
      break;
    case ShiftRule::kFourTerm: {
      const double d1 = eval_at(kHalfPi) - eval_at(-kHalfPi);
      const double d2 = eval_at(kThreeHalfPi) - eval_at(-kThreeHalfPi);
      grad = kC1 * d1 - kC2 * d2;
      break;
    }
  }
  weights[i] = w0;
  return grad;
}

std::vector<double> parameter_shift_gradient(
    const ScalarFn& f, std::vector<double> weights,
    const std::vector<ShiftRule>& rules, const exec::ExecPolicy& policy) {
  if (rules.size() != weights.size()) {
    throw std::invalid_argument("parameter_shift_gradient: rules mismatch");
  }
  std::vector<double> grad(weights.size());
  // Each chunk shifts a private copy of the weights, so the independent
  // per-weight circuit evaluations can run concurrently; every partial
  // starts from the same base vector as the serial schedule.
  exec::parallel_for(policy, 0, weights.size(),
                     [&](std::size_t lo, std::size_t hi) {
                       std::vector<double> w = weights;
                       for (std::size_t i = lo; i < hi; ++i) {
                         grad[i] = parameter_shift_partial(f, w, i, rules[i]);
                       }
                     });
  return grad;
}

std::vector<double> finite_difference_gradient(const ScalarFn& f,
                                               std::vector<double> weights,
                                               double h) {
  if (h <= 0.0) {
    throw std::invalid_argument("finite_difference_gradient: h <= 0");
  }
  std::vector<double> grad(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w0 = weights[i];
    weights[i] = w0 + h;
    const double fp = f(weights);
    weights[i] = w0 - h;
    const double fm = f(weights);
    weights[i] = w0;
    grad[i] = (fp - fm) / (2.0 * h);
  }
  return grad;
}

std::size_t shift_evaluations(const std::vector<ShiftRule>& rules) {
  std::size_t evals = 0;
  for (ShiftRule r : rules) {
    evals += r == ShiftRule::kTwoTerm ? 2U : 4U;
  }
  return evals;
}

}  // namespace arbiterq::qnn
