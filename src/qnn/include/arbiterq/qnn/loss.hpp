#pragma once
// Binary-classification losses on the QNN readout probability
// p = P(logical qubit 0 reads 1). Labels are 0/1.

#include <cstddef>
#include <vector>

namespace arbiterq::qnn {

enum class LossKind {
  kMse,           ///< (p - y)^2
  kCrossEntropy,  ///< -y log p - (1-y) log(1-p), probabilities clamped
};

/// Per-sample loss value.
double loss_value(LossKind kind, double p, int label);

/// d(loss)/dp at (p, label).
double loss_derivative(LossKind kind, double p, int label);

/// Mean loss over a batch of predicted probabilities and labels.
double batch_loss(LossKind kind, const std::vector<double>& probs,
                  const std::vector<int>& labels);

/// Classification accuracy with threshold 0.5.
double batch_accuracy(const std::vector<double>& probs,
                      const std::vector<int>& labels);

}  // namespace arbiterq::qnn
