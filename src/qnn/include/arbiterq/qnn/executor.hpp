#pragma once
// QnnExecutor binds one QNN model to one QPU: it compiles the circuit
// once (routing + basis translation), derives the device's noise model,
// and then serves forward evaluations and gradients against that
// compiled artifact for any (features, weights) binding.
//
// Two forward paths mirror StatevectorSimulator's noise treatments:
//  * probability()          — exact mode, used during training;
//  * sampled_probability()  — trajectory shots, used during inference.
// Readout error is folded into both as a classical contraction / flip.
//
// Two gradient paths:
//  * loss_gradient()        — adjoint differentiation, O(#gates);
//  * loss_gradient_shift()  — exact parameter-shift rules (§III-B),
//    the method real hardware would run; validated against the adjoint.

#include <memory>
#include <vector>

#include "arbiterq/device/qpu.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/loss.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/batched.hpp"
#include "arbiterq/sim/simulator.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace arbiterq::qnn {

struct ExecutorOptions {
  /// Depolarizing error mitigation: rescale the measured <Z> by the
  /// inverse circuit survival probability (the standard global-folding /
  /// ZNE-style correction, cf. QuantumNAT [29]). Exactly cancels the
  /// exact-mode attenuation; in sampled mode it amplifies the shot noise
  /// by 1/S, as it does on real hardware. Needed to train circuits whose
  /// depth exceeds the fleet's coherence budget (the HMDB51 model).
  bool mitigate_depolarizing = false;
  /// Parallel execution policy: batched forward evaluations and the
  /// per-sample/per-weight gradient circuits dispatch to the shared
  /// thread pool, each on its own scratch Statevector. Per-sample
  /// partials are folded in index order behind a serial barrier, so
  /// losses and gradients are bit-identical to the serial schedule for
  /// every thread count. Default: serial.
  exec::ExecPolicy exec = {};
  /// Execute through a compiled ExecPlan (static gates pre-fused, bind
  /// recomputes only parameter-dependent matrices, statevectors reused
  /// from a workspace pool). Bit-identical to the naive path; the plan
  /// is rebuilt whenever recalibrate() swaps the noise model. Disable to
  /// A/B against the per-call circuit walk.
  bool use_plan = true;
  /// Route multi-sample plan work through the sample-batched forward
  /// (sim/batched.hpp): dataset losses and adjoint gradients evaluate
  /// kBatchBlock samples per register sweep, and sampled_probability
  /// evolves trajectory blocks through one BatchedStatevector. Under
  /// strict reproducibility results are bit-identical to the unbatched
  /// plan path (the trajectory sampler has its own — batch-invariant —
  /// RNG schedule). No effect when use_plan is false.
  bool batched_forward = true;
};

class QnnExecutor {
 public:
  QnnExecutor(QnnModel model, device::Qpu qpu, ExecutorOptions options = {});

  const QnnModel& model() const noexcept { return model_; }
  const device::Qpu& qpu() const noexcept { return qpu_; }
  const transpile::CompiledCircuit& compiled() const noexcept {
    return compiled_;
  }
  const sim::NoiseModel& noise() const noexcept { return simulator_.noise(); }

  /// Physical qubit whose Z readout is the classifier output.
  int readout_qubit() const noexcept { return readout_qubit_; }

  const ExecutorOptions& options() const noexcept { return options_; }
  /// Circuit survival probability under the device's stochastic errors.
  double survival() const noexcept { return survival_; }

  /// The compiled execution plan, or nullptr when options().use_plan is
  /// false. Rebuilt by recalibrate().
  const sim::ExecPlan* plan() const noexcept { return plan_.get(); }

  /// Temporal calibration drift (paper §II-B, "spatial and temporal"
  /// noise biases): perturb every qubit's coherent bias by
  /// N(0, bias_drift_sigma) radians. Stochastic error rates (and hence
  /// the survival probability and the behavioral vector) are unchanged —
  /// drift moves each device's *optimum*, not its error budget.
  void recalibrate(double bias_drift_sigma, math::Rng& rng);

  /// Exact-mode P(readout = 1) including readout-error contraction.
  double probability(const std::vector<double>& features,
                     const std::vector<double>& weights) const;

  /// Trajectory-mode sampled P(readout = 1) over `shots` shots.
  double sampled_probability(const std::vector<double>& features,
                             const std::vector<double>& weights, int shots,
                             math::Rng& rng, int trajectories = 32) const;

  /// Mean exact-mode loss over a dataset of encoded features.
  double dataset_loss(LossKind kind,
                      const std::vector<std::vector<double>>& features,
                      const std::vector<int>& labels,
                      const std::vector<double>& weights) const;

  /// Gradient of the mean loss w.r.t. the weights (adjoint path).
  std::vector<double> loss_gradient(
      LossKind kind, const std::vector<std::vector<double>>& features,
      const std::vector<int>& labels,
      const std::vector<double>& weights) const;

  /// Same objective via exact parameter-shift rules.
  std::vector<double> loss_gradient_shift(
      LossKind kind, const std::vector<std::vector<double>>& features,
      const std::vector<int>& labels,
      const std::vector<double>& weights) const;

  /// Shift rule per weight (forwarded from the model).
  std::vector<ShiftRule> shift_rules() const;

  /// Wall-clock estimate for one shot on this device (scheduling input).
  double shot_latency_us() const;
  double shot_rate() const;

 private:
  double readout_contract(double p_one) const;
  /// (Re)compile the plan against the simulator's current noise model.
  void rebuild_plan();
  /// Batched forward over samples [lo, hi): packs each sample's params
  /// into `ws`, runs the plan's sample-batched expectation in
  /// kBatchBlock blocks and writes P(readout = 1) — mitigation and
  /// readout contraction applied — to out[i - lo]. Requires plan_.
  void batched_probabilities(const std::vector<std::vector<double>>& features,
                             const std::vector<double>& weights,
                             std::size_t lo, std::size_t hi,
                             sim::BatchedWorkspace& ws, double* out) const;

  QnnModel model_;
  device::Qpu qpu_;
  ExecutorOptions options_;
  transpile::CompiledCircuit compiled_;
  sim::StatevectorSimulator simulator_;
  int readout_qubit_;
  double survival_ = 1.0;
  std::size_t depth_ = 0;
  /// Shared, immutable once built; copies of the executor (e.g. the
  /// drift path cloning a fleet) share the same plan until one of them
  /// recalibrates.
  std::shared_ptr<const sim::ExecPlan> plan_;
  /// Per-executor pool of reusable evaluation scratch (statevectors,
  /// bound matrices, packed params). Mutable: forward/gradient methods
  /// are logically const. Copies start with a fresh pool.
  mutable sim::WorkspacePool workspaces_;
  /// Pool of sample-batched scratch for the batched_forward paths.
  mutable sim::BatchedWorkspacePool batched_workspaces_;
};

}  // namespace arbiterq::qnn
