#pragma once
// Backbone analysis after Sim, Johnson & Aspuru-Guzik ("Expressibility
// and entangling capability of parameterized quantum circuits", the
// source of the paper's Model-CRz / Model-CRx backbones):
//
//  * expressibility — KL divergence between the fidelity distribution of
//    random parameter pairs |<psi(a)|psi(b)>|^2 and the Haar-random
//    distribution P(F) = (N-1)(1-F)^(N-2). Lower = more expressive.
//  * entangling capability — mean Meyer-Wallach entanglement
//    Q = 2 (1 - (1/n) sum_k Tr(rho_k^2)) over random parameters,
//    in [0, 1]. Higher = more entangling.
//
// Both operate on the *logical* model circuit with random weights; the
// encoding angles are sampled uniformly in [0, pi] like real inputs.

#include "arbiterq/math/rng.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/statevector.hpp"

namespace arbiterq::qnn {

struct ExpressibilityReport {
  double kl_divergence = 0.0;
  int samples = 0;
  int bins = 0;
};

/// Estimate expressibility from `samples` random state pairs binned into
/// `bins` fidelity buckets. Deterministic under `rng`.
ExpressibilityReport expressibility(const QnnModel& model, int samples,
                                    int bins, math::Rng rng);

/// Mean Meyer-Wallach Q over `samples` random parameter vectors.
double entangling_capability(const QnnModel& model, int samples,
                             math::Rng rng);

/// Meyer-Wallach Q of one state (exposed for testing).
double meyer_wallach_q(const sim::Statevector& sv);

}  // namespace arbiterq::qnn
