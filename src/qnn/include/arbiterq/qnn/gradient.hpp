#pragma once
// Gradient oracles over a scalar function of the weight vector (the QNN
// readout probability). Parameter shift (paper §III-B, after Wang et al.
// QOC) is exact for our circuits:
//  * two-term rule for single-qubit rotation weights:
//      f'(w) = (f(w+pi/2) - f(w-pi/2)) / 2
//  * four-term rule for controlled-rotation weights (generator
//    eigenvalues {0, +-1/2} give frequencies {1/2, 1}):
//      f'(w) = c1 (f(w+pi/2) - f(w-pi/2)) - c2 (f(w+3pi/2) - f(w-3pi/2))
//      c1 = (sqrt2+1)/(4 sqrt2),  c2 = (sqrt2-1)/(4 sqrt2)
// A central finite-difference oracle is provided for cross-validation.

#include <functional>
#include <vector>

#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/qnn/model.hpp"

namespace arbiterq::qnn {

/// Scalar objective evaluated at a weight vector.
using ScalarFn = std::function<double(const std::vector<double>&)>;

/// Exact parameter-shift partial derivative of f with respect to
/// weights[i]; `weights` is restored before returning.
double parameter_shift_partial(const ScalarFn& f,
                               std::vector<double>& weights, std::size_t i,
                               ShiftRule rule);

/// Full parameter-shift gradient; rules.size() must equal weights.size().
/// The per-weight shift circuits are independent, so a parallel policy
/// fans them out across the pool (each task works on a private copy of
/// the weight vector). `f` must then be safe to call concurrently. The
/// result is bit-identical for every thread count.
std::vector<double> parameter_shift_gradient(
    const ScalarFn& f, std::vector<double> weights,
    const std::vector<ShiftRule>& rules,
    const exec::ExecPolicy& policy = {});

/// Central finite differences (validation oracle).
std::vector<double> finite_difference_gradient(const ScalarFn& f,
                                               std::vector<double> weights,
                                               double h = 1e-5);

/// Number of f evaluations one gradient costs (2 or 4 per weight) —
/// the paper's training-time model charges circuit executions per shift.
std::size_t shift_evaluations(const std::vector<ShiftRule>& rules);

}  // namespace arbiterq::qnn
