#pragma once
// The two QNN backbones of the evaluation (§V-A), adapted from Sim et
// al.'s circuit family:
//   Model-CRz: each learning layer is RY(w) on every qubit followed by a
//              CRZ(w) entangling ring,
//   Model-CRx: same with a CRX ring.
// Weight count = 2 * n_qubits * n_layers, which reproduces Table II
// exactly (8/16/24 weights with 2 layers; 200 with 10 layers on HMDB51).
//
// The full circuit's parameter vector is [features | weights]: indices
// [0, n_qubits) are the angle-encoded features, the rest are trainable.

#include <string>

#include "arbiterq/circuit/circuit.hpp"

namespace arbiterq::qnn {

enum class Backbone { kCRz, kCRx };

std::string backbone_name(Backbone b);

/// Shift rule needed for the exact parameter-shift gradient of a weight.
enum class ShiftRule {
  kTwoTerm,   ///< single-qubit rotation: +-pi/2 shifts
  kFourTerm,  ///< controlled rotation: +-pi/2 and +-3pi/2 shifts
};

class QnnModel {
 public:
  QnnModel(Backbone backbone, int num_qubits, int num_layers);

  Backbone backbone() const noexcept { return backbone_; }
  int num_qubits() const noexcept { return num_qubits_; }
  int num_layers() const noexcept { return num_layers_; }
  int num_weights() const noexcept { return 2 * num_qubits_ * num_layers_; }
  /// Total circuit parameters: features + weights.
  int num_params() const noexcept { return num_qubits_ + num_weights(); }

  /// Parameter index of weight `w` inside the circuit parameter vector.
  int weight_param_index(int w) const noexcept { return num_qubits_ + w; }

  /// Shift rule for weight `w` (RY weights are two-term, ring weights
  /// four-term).
  ShiftRule shift_rule(int w) const;

  /// Encoding layer + learning layers, parameterized as described above.
  /// The readout observable is Z on logical qubit 0.
  const circuit::Circuit& circuit() const noexcept { return circuit_; }

  /// Assemble the circuit parameter vector from an encoded feature vector
  /// (length num_qubits, radians) and a weight vector.
  std::vector<double> pack_params(const std::vector<double>& features,
                                  const std::vector<double>& weights) const;

  /// Same, writing into a caller-owned buffer: `out` is cleared and
  /// refilled, so a reused buffer (e.g. workspace scratch on the
  /// training hot path) packs without allocating.
  void pack_params_into(const std::vector<double>& features,
                        const std::vector<double>& weights,
                        std::vector<double>& out) const;

 private:
  circuit::Circuit build() const;

  Backbone backbone_;
  int num_qubits_;
  int num_layers_;
  circuit::Circuit circuit_;
};

}  // namespace arbiterq::qnn
