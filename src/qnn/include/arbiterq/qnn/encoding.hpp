#pragma once
// Angle encoding (paper §V-A, after Weigold et al.): classical features,
// one per qubit, become the rotation angles of a layer of RY gates.
// FeatureScaler maps raw feature values into [0, pi] with min/max learned
// on the training split only.

#include <vector>

namespace arbiterq::qnn {

class FeatureScaler {
 public:
  /// Learn per-dimension min/max from `samples` (rows of equal length).
  explicit FeatureScaler(const std::vector<std::vector<double>>& samples);

  /// Map one sample into [0, pi]^d; values outside the training range are
  /// clamped.
  std::vector<double> transform(const std::vector<double>& sample) const;

  std::vector<std::vector<double>> transform_all(
      const std::vector<std::vector<double>>& samples) const;

  std::size_t dim() const noexcept { return lo_.size(); }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace arbiterq::qnn
