#include "arbiterq/qnn/analysis.hpp"

#include <cmath>
#include <complex>
#include <numbers>
#include <stdexcept>

namespace arbiterq::qnn {

namespace {

using circuit::Complex;

std::vector<double> random_params(const QnnModel& model, math::Rng& rng) {
  std::vector<double> p(static_cast<std::size_t>(model.num_params()));
  for (int q = 0; q < model.num_qubits(); ++q) {
    p[static_cast<std::size_t>(q)] = rng.uniform(0.0, std::numbers::pi);
  }
  for (int w = 0; w < model.num_weights(); ++w) {
    p[static_cast<std::size_t>(model.weight_param_index(w))] =
        rng.uniform(-std::numbers::pi, std::numbers::pi);
  }
  return p;
}

sim::Statevector evolve(const QnnModel& model,
                        const std::vector<double>& params) {
  sim::Statevector sv(model.num_qubits());
  for (const auto& g : model.circuit().gates()) sv.apply_gate(g, params);
  return sv;
}

double fidelity(const sim::Statevector& a, const sim::Statevector& b) {
  Complex overlap{0.0, 0.0};
  const auto& aa = a.amplitudes();
  const auto& bb = b.amplitudes();
  for (std::size_t i = 0; i < aa.size(); ++i) {
    overlap += std::conj(aa[i]) * bb[i];
  }
  return std::norm(overlap);
}

}  // namespace

double meyer_wallach_q(const sim::Statevector& sv) {
  const int n = sv.num_qubits();
  const auto& amps = sv.amplitudes();
  double purity_sum = 0.0;
  for (int q = 0; q < n; ++q) {
    const std::size_t bit = std::size_t{1} << q;
    // Single-qubit reduced density matrix entries.
    double rho00 = 0.0;
    double rho11 = 0.0;
    Complex rho01{0.0, 0.0};
    for (std::size_t i = 0; i < amps.size(); ++i) {
      if (i & bit) continue;
      const Complex a0 = amps[i];
      const Complex a1 = amps[i | bit];
      rho00 += std::norm(a0);
      rho11 += std::norm(a1);
      rho01 += a0 * std::conj(a1);
    }
    purity_sum += rho00 * rho00 + rho11 * rho11 + 2.0 * std::norm(rho01);
  }
  return 2.0 * (1.0 - purity_sum / static_cast<double>(n));
}

ExpressibilityReport expressibility(const QnnModel& model, int samples,
                                    int bins, math::Rng rng) {
  if (samples < 2 || bins < 2) {
    throw std::invalid_argument("expressibility: need samples/bins >= 2");
  }
  std::vector<double> histogram(static_cast<std::size_t>(bins), 0.0);
  for (int s = 0; s < samples; ++s) {
    const auto pa = random_params(model, rng);
    const auto pb = random_params(model, rng);
    const double f = fidelity(evolve(model, pa), evolve(model, pb));
    auto bin = static_cast<std::size_t>(f * bins);
    if (bin >= static_cast<std::size_t>(bins)) {
      bin = static_cast<std::size_t>(bins) - 1;
    }
    histogram[bin] += 1.0;
  }
  for (double& h : histogram) h /= static_cast<double>(samples);

  // Haar bin mass: integral of (N-1)(1-F)^(N-2) over the bin is
  // (1-F_lo)^(N-1) - (1-F_hi)^(N-1).
  const double dim = std::pow(2.0, model.num_qubits());
  ExpressibilityReport report;
  report.samples = samples;
  report.bins = bins;
  double kl = 0.0;
  for (int b = 0; b < bins; ++b) {
    const double lo = static_cast<double>(b) / bins;
    const double hi = static_cast<double>(b + 1) / bins;
    const double haar =
        std::pow(1.0 - lo, dim - 1.0) - std::pow(1.0 - hi, dim - 1.0);
    const double p = histogram[static_cast<std::size_t>(b)];
    if (p > 0.0) kl += p * std::log(p / std::max(haar, 1e-12));
  }
  report.kl_divergence = kl;
  return report;
}

double entangling_capability(const QnnModel& model, int samples,
                             math::Rng rng) {
  if (samples < 1) {
    throw std::invalid_argument("entangling_capability: samples < 1");
  }
  double total = 0.0;
  for (int s = 0; s < samples; ++s) {
    total += meyer_wallach_q(evolve(model, random_params(model, rng)));
  }
  return total / static_cast<double>(samples);
}

}  // namespace arbiterq::qnn
