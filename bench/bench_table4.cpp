// Regenerates Table IV: shot-oriented inference on QPU tori vs EQC's
// batch-based inference, for QPU subsets {6, 8, 10} of the Table III
// fleet on the Iris and Wine benchmarks. For each configuration it
// prints the DFT cycle period T, the torus composition after equidistant
// partition, and the test loss of both schedulers.
//
// Shape targets (paper): ArbiterQ's loss is below EQC's in every cell
// (24.71% mean reduction), and ArbiterQ improves with more QPUs (more
// tori with diverse preferences).

#include "bench_util.hpp"

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"

namespace {

using namespace arbiterq;

void run_dataset(const data::BenchmarkCase& bc, qnn::Backbone backbone,
                 int epochs, double* total_reduction, int* cells) {
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(backbone, bc.num_qubits, bc.num_layers);

  std::printf("%s:\n", bc.dataset.c_str());
  for (int fleet_size : {6, 8, 10}) {
    core::TrainConfig cfg;
    cfg.epochs = epochs;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet_subset(fleet_size, bc.num_qubits),
        cfg);
    const core::TrainResult arbiter =
        trainer.train(core::Strategy::kArbiterQ, split);
    const core::TrainResult eqc = trainer.train(core::Strategy::kEqc,
                                                split);

    const auto partition = core::build_torus_partition(
        trainer.behavioral_vectors(), arbiter.weights);

    core::ScheduleConfig sc;
    sc.shots_per_task = 256;
    sc.warmup_shots = 32;
    sc.trajectories = 16;
    const core::ShotOrientedScheduler scheduler(
        trainer.executors(), arbiter.weights, partition, sc);
    const auto tasks =
        core::make_tasks(split.test_features, split.test_labels);
    const auto shot_report = scheduler.run(tasks);
    // "EQC adopts batch-based inference" (paper §V-C): its central model
    // deployed everywhere, one QPU per task.
    const auto batch_report = core::batch_based_inference(
        trainer.executors(), eqc.weights, tasks, sc);

    std::printf("  %2d QPUs | cycle T %.4g | tori:", fleet_size,
                partition.cycle_period);
    for (const auto& torus : partition.tori) {
      std::printf(" {");
      for (std::size_t k = 0; k < torus.size(); ++k) {
        std::printf("%s%d", k ? "," : "", torus[k] + 1);
      }
      std::printf("}");
    }
    const double reduction =
        (batch_report.mean_loss - shot_report.mean_loss) /
        batch_report.mean_loss;
    std::printf("\n          | ArbiterQ loss %.4f | EQC loss %.4f | "
                "reduction %.2f%%\n",
                shot_report.mean_loss, batch_report.mean_loss,
                100.0 * reduction);
    *total_reduction += reduction;
    ++*cells;
  }
}

}  // namespace

int main() {
  std::printf("Table IV: shot-oriented inference on QPU tori "
              "(ArbiterQ) vs batch-based inference (EQC)\n\n");
  double total_reduction = 0.0;
  int cells = 0;
  run_dataset({"iris", 2, 2}, qnn::Backbone::kCRz, 40, &total_reduction,
              &cells);
  run_dataset({"wine", 4, 2}, qnn::Backbone::kCRz, 100, &total_reduction,
              &cells);
  std::printf("\nmean loss reduction %.2f%% (paper reports 24.71%%)\n",
              100.0 * total_reduction / cells);
  return 0;
}
