// Regenerates Figure 6: model convergence on the real-world QPU. The
// paper cuts four 2-qubit groups out of the origin_wukong chip (U3+CZ
// basis) and trains a 2-qubit QNN across them; we do the same on our
// wukong-like device model (see DESIGN.md, "Substitutions").
//
// Shape targets (paper): final losses ArbiterQ 0.1045 < EQC 0.1092 <
// single-node 0.1383 ~ all-sharing 0.1397; ArbiterQ converges ~1.6x
// faster than the others.

#include "bench_util.hpp"

int main() {
  using namespace arbiterq;

  const data::EncodedSplit split = data::prepare_case({"iris", 2, 2});
  const qnn::QnnModel model(qnn::Backbone::kCRz, 2, 2);

  const auto tiles = device::wukong_tiles();
  std::printf("Fig. 6: 2-qubit QNN across four wukong tiles "
              "(basis %s)\n",
              device::basis_name(tiles[0].basis()).c_str());
  for (const auto& t : tiles) {
    std::printf("  %s: f1q(0)=%.4f f2q=%.4f bias(0)=%+.3f rad\n",
                t.name().c_str(), t.fidelity_1q(0), t.fidelity_2q(0, 1),
                t.coherent_bias(0));
  }
  std::printf("\n");

  core::TrainConfig cfg;
  cfg.epochs = 60;
  const core::DistributedTrainer trainer(model, tiles, cfg);

  std::vector<std::pair<std::string, core::Convergence>> summary;
  for (core::Strategy s : bench::kAllStrategies) {
    const auto r = trainer.train(s, split);
    bench::print_series(core::strategy_name(s).c_str(), r.epoch_test_loss,
                        4);
    summary.emplace_back(core::strategy_name(s), r.convergence);
  }

  std::printf("\nfinal loss / convergence epoch:\n");
  const core::Convergence& arb = summary.back().second;
  for (const auto& [name, conv] : summary) {
    std::printf("  %-12s loss %.4f  epoch %3d", name.c_str(), conv.loss,
                conv.epoch);
    if (name != "ArbiterQ") {
      std::printf("  (ArbiterQ speedup %.2fx)",
                  static_cast<double>(conv.epoch) /
                      static_cast<double>(arb.epoch));
    }
    std::printf("\n");
  }
  std::printf("(paper: ArbiterQ 0.1045, EQC 0.1092, all-sharing 0.1397, "
              "single-node 0.1383; speedups 1.57-1.64x)\n");
  return 0;
}
