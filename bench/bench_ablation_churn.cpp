// Robustness study (paper §I motivation, "frequent online/offline"):
// sweep the per-epoch device-offline probability on the Iris benchmark
// over 6 QPUs and compare all four strategies' converged loss, plus a
// gradient-pruning sweep (after Wang et al., QOC) showing how much of
// the gradient a node can skip before accuracy degrades.

#include "bench_util.hpp"

int main() {
  using namespace arbiterq;

  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);

  std::printf("Robustness: per-epoch device offline probability "
              "(6 QPUs, Iris, 40 epochs)\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "p(offline)", "single-node",
              "all-sharing", "EQC", "ArbiterQ");
  for (double p : {0.0, 0.1, 0.3, 0.5}) {
    core::TrainConfig cfg;
    cfg.epochs = 40;
    cfg.offline_probability = p;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet_subset(6, bc.num_qubits), cfg);
    std::printf("%-10.1f", p);
    for (core::Strategy s : bench::kAllStrategies) {
      const auto r = trainer.train(s, split);
      std::printf(" %12.4f", r.convergence.loss);
    }
    std::printf("\n");
  }

  std::printf("\nTemporal calibration drift: bias drift sigma, every "
              "5 epochs (40 epochs)\n");
  std::printf("%-10s %12s %12s %12s %12s\n", "sigma", "single-node",
              "all-sharing", "EQC", "ArbiterQ");
  for (double sigma : {0.0, 0.02, 0.05, 0.1}) {
    core::TrainConfig cfg;
    cfg.epochs = 40;
    cfg.drift_sigma = sigma;
    cfg.drift_interval = 5;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet_subset(6, bc.num_qubits), cfg);
    std::printf("%-10.2f", sigma);
    for (core::Strategy s : bench::kAllStrategies) {
      const auto r = trainer.train(s, split);
      std::printf(" %12.4f", r.convergence.loss);
    }
    std::printf("\n");
  }

  std::printf("\nGradient pruning: fraction of gradient components "
              "dropped per node (ArbiterQ)\n");
  std::printf("%-10s %12s %12s\n", "pruned", "conv epoch", "loss");
  for (double prune : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    core::TrainConfig cfg;
    cfg.epochs = 40;
    cfg.gradient_prune_ratio = prune;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet_subset(6, bc.num_qubits), cfg);
    const auto r = trainer.train(core::Strategy::kArbiterQ, split);
    std::printf("%-10.2f %12d %12.4f\n", prune, r.convergence.epoch,
                r.convergence.loss);
  }
  return 0;
}
