// Regenerates Figure 2 (the motivational example): a 2-layer QNN on the
// Wine benchmark across three heterogeneous QPUs.
//
//  (a) all-sharing distributed training vs single-node: the loss curves
//      diverge, with all-sharing settling visibly above single-node's
//      quality gain rate — heterogeneity can overwhelm parallelism.
//  (b) batch-based vs shot-based inference: the standard deviation of
//      the per-task loss is larger under batch-based scheduling.

#include "bench_util.hpp"

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"

int main() {
  using namespace arbiterq;

  const data::BenchmarkCase bc{"wine", 4, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);

  // Three strongly heterogeneous devices standing in for the paper's
  // IBM Cairo / Osaka / Ithaca: QPUs 1, 4 and 10 span the largest
  // pairwise behavioral distances in the Table III fleet, and the
  // calibration-bias factor is raised to the cross-generation level the
  // motivational example needs (different chip generations disagree far
  // more than same-batch simulators).
  auto fleet10 = device::table3_fleet(bc.num_qubits, 12.0);
  std::vector<device::Qpu> fleet = {fleet10[0], fleet10[3], fleet10[9]};

  core::TrainConfig cfg;
  cfg.epochs = 60;
  const core::DistributedTrainer trainer(model, fleet, cfg);

  // Sink every per-epoch and per-assignment record alongside the CSVs
  // when $ARBITERQ_CSV_DIR is configured.
  const auto tel = bench::maybe_telemetry("fig2_telemetry.jsonl");

  std::printf("Fig. 2(a): loss vs epoch, 2-layer QNN on Wine, 3 QPUs\n");
  const auto single =
      trainer.train(core::Strategy::kSingleNode, split, tel.get());
  const auto sharing =
      trainer.train(core::Strategy::kAllSharing, split, tel.get());
  bench::print_series("single-node", single.epoch_test_loss, 4);
  bench::print_series("all-sharing", sharing.epoch_test_loss, 4);
  double single_mean = 0.0;
  double sharing_mean = 0.0;
  for (int e = 0; e < cfg.epochs; ++e) {
    single_mean += single.epoch_test_loss[static_cast<std::size_t>(e)];
    sharing_mean += sharing.epoch_test_loss[static_cast<std::size_t>(e)];
  }
  single_mean /= cfg.epochs;
  sharing_mean /= cfg.epochs;
  std::printf("loss at epoch 30: single-node %.4f, all-sharing %.4f; "
              "mean over run: %.4f vs %.4f\n"
              "(paper: the all-sharing curve sits well above "
              "single-node's)\n\n",
              single.epoch_test_loss[30], sharing.epoch_test_loss[30],
              single_mean, sharing_mean);

  std::printf("Fig. 2(b): per-task loss spread under the two "
              "inference schedulings\n");
  const auto arbiter =
      trainer.train(core::Strategy::kArbiterQ, split, tel.get());
  const auto partition = core::build_torus_partition(
      trainer.behavioral_vectors(), arbiter.weights, 1);
  core::ScheduleConfig sc;
  sc.shots_per_task = 256;
  sc.warmup_shots = 32;
  sc.trajectories = 16;
  const core::ShotOrientedScheduler scheduler(trainer.executors(),
                                              arbiter.weights, partition,
                                              sc);
  const auto tasks = core::make_tasks(split.test_features,
                                      split.test_labels);
  const auto shot = scheduler.run(tasks, tel.get());
  const auto batch = core::batch_based_inference(trainer.executors(),
                                                 arbiter.weights, tasks,
                                                 sc);
  const auto ensemble = core::ensemble_weighted_inference(
      trainer.executors(), arbiter.weights, trainer.eqc_vote_weights(),
      tasks, sc);
  std::printf("batch-based: mean %.4f  stddev %.4f  throughput %.1f "
              "tasks/s\n",
              batch.mean_loss, batch.loss_stddev,
              batch.throughput_tasks_per_s);
  std::printf("shot-based:  mean %.4f  stddev %.4f  throughput %.1f "
              "tasks/s (paper: smaller stddev)\n",
              shot.mean_loss, shot.loss_stddev,
              shot.throughput_tasks_per_s);
  std::printf("ensemble:    mean %.4f  stddev %.4f  throughput %.1f "
              "tasks/s (reference: every QPU runs every task)\n",
              ensemble.mean_loss, ensemble.loss_stddev,
              ensemble.throughput_tasks_per_s);

  if (tel) {
    tel->write_global_state();
    tel->close();
    std::printf("(wrote fig2_telemetry.jsonl: %zu lines)\n",
                tel->lines_written());
  }
  return 0;
}
