// Backbone analysis (after Sim et al., the source of the paper's two
// models): expressibility (KL divergence to the Haar fidelity
// distribution — lower is better) and entangling capability
// (Meyer-Wallach Q — higher is more entangling) of Model-CRz and
// Model-CRx across qubit and layer counts, including the Table II
// configurations.

#include <cstdio>

#include "arbiterq/qnn/analysis.hpp"

int main() {
  using namespace arbiterq;

  std::printf("Backbone expressibility / entangling capability\n");
  std::printf("%-10s %7s %7s | %14s %14s\n", "backbone", "qubits",
              "layers", "expr (KL)", "entangle (Q)");
  const struct {
    int qubits;
    int layers;
  } shapes[] = {{2, 1}, {2, 2}, {4, 1}, {4, 2}, {6, 2}, {4, 4}};
  for (qnn::Backbone b : {qnn::Backbone::kCRz, qnn::Backbone::kCRx}) {
    for (const auto& shape : shapes) {
      const qnn::QnnModel m(b, shape.qubits, shape.layers);
      const auto expr =
          qnn::expressibility(m, 1500, 40, math::Rng(1234));
      const double q =
          qnn::entangling_capability(m, 300, math::Rng(4321));
      std::printf("%-10s %7d %7d | %14.4f %14.4f\n",
                  qnn::backbone_name(b).c_str(), shape.qubits,
                  shape.layers, expr.kl_divergence, q);
    }
  }
  std::printf("\n(expected shape, after Sim et al.: deeper circuits are "
              "more expressive — smaller KL — and at least as "
              "entangling)\n");
  return 0;
}
