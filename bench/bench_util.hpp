#pragma once
// Shared plumbing for the evaluation binaries: run the four training
// strategies on one benchmark case and collect the Table I metrics.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include <cstdlib>

#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/report/csv.hpp"
#include "arbiterq/telemetry/export.hpp"

namespace arbiterq::bench {

constexpr core::Strategy kAllStrategies[] = {
    core::Strategy::kSingleNode, core::Strategy::kAllSharing,
    core::Strategy::kEqc, core::Strategy::kArbiterQ};

struct StrategyOutcome {
  core::Strategy strategy;
  core::TrainResult result;
};

/// Truncate the test split to at most `max_test` samples (used to bound
/// the per-epoch evaluation cost of the largest benchmark).
inline data::EncodedSplit limit_test(data::EncodedSplit split,
                                     std::size_t max_test) {
  if (split.test_features.size() > max_test) {
    split.test_features.resize(max_test);
    split.test_labels.resize(max_test);
  }
  return split;
}

inline std::vector<StrategyOutcome> run_all_strategies(
    const core::DistributedTrainer& trainer,
    const data::EncodedSplit& split) {
  std::vector<StrategyOutcome> out;
  for (core::Strategy s : kAllStrategies) {
    out.push_back({s, trainer.train(s, split)});
  }
  return out;
}

inline const core::TrainResult& find(
    const std::vector<StrategyOutcome>& outcomes, core::Strategy s) {
  for (const auto& o : outcomes) {
    if (o.strategy == s) return o.result;
  }
  throw std::logic_error("find: strategy not run");
}

/// Write `table` into $ARBITERQ_CSV_DIR/<filename> when that directory
/// is configured; silent no-op otherwise.
inline void maybe_write_csv(const std::string& filename,
                            const report::CsvTable& table) {
  const char* dir = std::getenv("ARBITERQ_CSV_DIR");
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/" + filename;
  table.write(path);
  std::printf("(wrote %s)\n", path.c_str());
}

inline void maybe_write_curves(
    const std::string& filename,
    const std::vector<StrategyOutcome>& outcomes) {
  if (std::getenv("ARBITERQ_CSV_DIR") == nullptr) return;
  std::vector<std::pair<std::string, std::vector<double>>> series;
  for (const auto& o : outcomes) {
    series.emplace_back(core::strategy_name(o.strategy),
                        o.result.epoch_test_loss);
  }
  maybe_write_csv(filename, report::loss_curves_table(series));
}

/// Open $ARBITERQ_CSV_DIR/<filename> as a JSONL telemetry sink when
/// that directory is configured; nullptr otherwise. Pass the raw
/// pointer to train()/run() — a null sink is a no-op there. Call
/// write_global_state() + close() before dropping the handle.
inline std::unique_ptr<telemetry::JsonlExporter> maybe_telemetry(
    const std::string& filename) {
  const char* dir = std::getenv("ARBITERQ_CSV_DIR");
  if (dir == nullptr) return nullptr;
  return std::make_unique<telemetry::JsonlExporter>(std::string(dir) + "/" +
                                                    filename);
}

inline void print_series(const char* label,
                         const std::vector<double>& series,
                         std::size_t stride) {
  std::printf("%-12s", label);
  for (std::size_t e = 0; e < series.size(); e += stride) {
    std::printf(" %.4f", series[e]);
  }
  std::printf("\n");
}

}  // namespace arbiterq::bench
