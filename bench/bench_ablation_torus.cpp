// Ablation of the torus construction (§IV-A design choices, not a paper
// table): on the Iris benchmark over 10 QPUs,
//  1. sweep the number of sub-tori (1 = one big pool .. 5),
//  2. compare the DFT-period wrap against a naive partition that chunks
//     QPUs *contiguously along the behavioral axis* — which packs
//     similar devices together and should compensate noise worse.

#include <algorithm>
#include <numeric>

#include "bench_util.hpp"

#include "arbiterq/core/scheduler.hpp"
#include "arbiterq/core/torus.hpp"

namespace {

using namespace arbiterq;

core::TorusPartition contiguous_partition(core::TorusPartition base,
                                          int num_tori) {
  // Re-chunk by raw behavioral coordinate instead of wrapped phase.
  const std::size_t n = base.behavioral_coords.size();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return base.behavioral_coords[static_cast<std::size_t>(a)] <
           base.behavioral_coords[static_cast<std::size_t>(b)];
  });
  base.tori.assign(static_cast<std::size_t>(num_tori), {});
  std::size_t cursor = 0;
  for (int t = 0; t < num_tori; ++t) {
    const std::size_t remaining = static_cast<std::size_t>(num_tori - t);
    const std::size_t chunk = (n - cursor + remaining - 1) / remaining;
    for (std::size_t k = 0; k < chunk; ++k) {
      base.tori[static_cast<std::size_t>(t)].push_back(order[cursor++]);
    }
  }
  return base;
}

}  // namespace

int main() {
  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);

  core::TrainConfig cfg;
  cfg.epochs = 40;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet(bc.num_qubits), cfg);
  const auto arbiter = trainer.train(core::Strategy::kArbiterQ, split);
  const auto tasks =
      core::make_tasks(split.test_features, split.test_labels);

  core::ScheduleConfig sc;
  sc.shots_per_task = 256;
  sc.warmup_shots = 32;
  sc.trajectories = 16;

  std::printf("Ablation: number of sub-tori (10 QPUs, Iris)\n");
  for (int tori = 1; tori <= 5; ++tori) {
    const auto partition = core::build_torus_partition(
        trainer.behavioral_vectors(), arbiter.weights, tori);
    const core::ShotOrientedScheduler scheduler(
        trainer.executors(), arbiter.weights, partition, sc);
    const auto r = scheduler.run(tasks);
    std::printf("  %d tori: loss %.4f  stddev %.4f  imbalance %.2f\n",
                tori, r.mean_loss, r.loss_stddev, r.workload_imbalance);
  }

  std::printf("\nAblation: DFT-period wrap vs contiguous behavioral "
              "chunks (3 tori)\n");
  const auto wrapped = core::build_torus_partition(
      trainer.behavioral_vectors(), arbiter.weights, 3);
  const auto naive = contiguous_partition(wrapped, 3);
  for (const auto* p : {&wrapped, &naive}) {
    const core::ShotOrientedScheduler scheduler(trainer.executors(),
                                                arbiter.weights, *p, sc);
    const auto r = scheduler.run(tasks);
    std::printf("  %-18s loss %.4f  stddev %.4f  tori:",
                p == &wrapped ? "DFT-period wrap" : "contiguous chunks",
                r.mean_loss, r.loss_stddev);
    for (const auto& t : p->tori) {
      std::printf(" {");
      for (std::size_t k = 0; k < t.size(); ++k) {
        std::printf("%s%d", k ? "," : "", t[k] + 1);
      }
      std::printf("}");
    }
    std::printf("\n");
  }
  return 0;
}
