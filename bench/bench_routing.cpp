// Routing study: SWAP counts and resulting circuit depth/error of the
// greedy shortest-path router vs the SABRE-style lookahead router, for
// the QNN ring entangler on every topology family in the fleet. Routing
// quality feeds straight into the behavioral vectors' topological part
// (and thus into grouping), so this ablation shows how compiler choices
// shift ArbiterQ's similarity structure.

#include <cstdio>

#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/transpile/decompose.hpp"
#include "arbiterq/transpile/optimize.hpp"
#include "arbiterq/transpile/routing.hpp"
#include "arbiterq/transpile/transpiler.hpp"

int main() {
  using namespace arbiterq;

  const qnn::QnnModel model(qnn::Backbone::kCRz, 6, 2);
  std::printf("Routing the %d-qubit ring-entangler model "
              "(%zu logical gates)\n",
              model.num_qubits(), model.circuit().size());
  std::printf("%-12s %-10s | %6s %6s %7s | %10s\n", "device", "router",
              "swaps", "gates", "depth", "sum(topo)");

  for (const device::Qpu& dev : device::table3_fleet(6)) {
    for (const auto& [name, strategy] :
         {std::pair{"greedy",
                    transpile::RoutingOptions::Strategy::kGreedyPath},
          std::pair{"lookahead",
                    transpile::RoutingOptions::Strategy::kLookahead}}) {
      transpile::RoutingOptions opts;
      opts.strategy = strategy;
      const auto routed =
          transpile::route(model.circuit(), dev.topology(), opts);
      const auto executable =
          transpile::decompose_to_basis(routed.circuit, dev.basis());

      transpile::CompiledCircuit compiled;
      compiled.routed = routed.circuit;
      compiled.executable = executable;
      compiled.initial_layout = routed.initial_layout;
      compiled.final_layout = routed.final_layout;
      const auto bv =
          core::vectorize(compiled, dev, model.circuit().size());
      double topo_sum = 0.0;
      for (double v : bv.topological) topo_sum += v;

      std::printf("%-12s %-10s | %6zu %6zu %7zu | %10.4f\n",
                  dev.name().c_str(), name,
                  routed.circuit.routing_swap_count(), executable.size(),
                  executable.depth(), topo_sum);
    }
  }

  std::printf("\nNoise-aware layout vs identity placement "
              "(behavioral error mass sum(ctx)+sum(topo)):\n");
  for (const device::Qpu& dev : device::table3_fleet(6)) {
    double mass[2];
    for (int use_layout = 0; use_layout < 2; ++use_layout) {
      transpile::CompileOptions options;
      options.select_layout = use_layout == 1;
      const auto cc = transpile::compile(model.circuit(), dev, options);
      const auto bv = core::vectorize(cc, dev, model.circuit().size());
      double m = 0.0;
      for (double v : bv.contextual) m += v;
      for (double v : bv.topological) m += v;
      mass[use_layout] = m;
    }
    std::printf("  %-12s identity %.4f -> selected %.4f (%+.1f%%)\n",
                dev.name().c_str(), mass[0], mass[1],
                100.0 * (mass[1] - mass[0]) / mass[0]);
  }

  std::printf("\nPeephole optimizer effect on the executable stream:\n");
  for (int qubits : {4, 6, 10}) {
    const qnn::QnnModel m(qnn::Backbone::kCRz, qubits,
                          qubits >= 10 ? 10 : 2);
    const auto dev = device::table3_fleet(qubits)[0];
    const auto compiled = transpile::compile(m.circuit(), dev);
    transpile::OptimizeStats stats;
    const auto optimized = transpile::optimize(compiled.executable, &stats);
    std::printf("  %2d qubits: %5zu -> %5zu gates "
                "(merged %zu, cancelled %zu pairs, dropped %zu)\n",
                qubits, compiled.executable.size(), optimized.size(),
                stats.rotations_merged, stats.pairs_cancelled,
                stats.identities_dropped);
  }
  return 0;
}
