// Ablation of the similarity-aware gradient sharing (§III-B design
// choices, not a paper table): sweep the similarity sharpness kappa and
// the grouping threshold on the Wine benchmark over the full fleet, and
// report ArbiterQ's convergence epoch and loss plus the group structure.
//
//  * kappa -> 0 makes every peer weight ~1 (all-sharing-like inside a
//    group); kappa -> inf makes ArbiterQ purely personalized.
//  * threshold -> 0 isolates every node; threshold -> inf merges the
//    fleet into one group.
// The sweet spot in the middle is the paper's central design claim.

#include "bench_util.hpp"

namespace {

using namespace arbiterq;

void run(const core::TrainConfig& cfg, const qnn::QnnModel& model,
         const data::EncodedSplit& split, const char* label) {
  const core::DistributedTrainer trainer(
      model, device::table3_fleet(model.num_qubits()), cfg);
  const auto r = trainer.train(core::Strategy::kArbiterQ, split);
  const auto groups = trainer.sharing_groups();
  std::size_t largest = 0;
  for (const auto& g : groups) largest = std::max(largest, g.size());
  std::printf("  %-28s conv epoch %3d  loss %.4f  groups %zu "
              "(largest %zu)\n",
              label, r.convergence.epoch, r.convergence.loss,
              groups.size(), largest);
}

}  // namespace

int main() {
  const data::BenchmarkCase bc{"wine", 4, 2};
  const data::EncodedSplit split = data::prepare_case(bc);
  const qnn::QnnModel model(qnn::Backbone::kCRz, bc.num_qubits,
                            bc.num_layers);

  std::printf("Ablation: similarity sharpness kappa "
              "(threshold fixed at default)\n");
  for (double kappa : {0.0, 200.0, 2000.0, 8000.0, 20000.0}) {
    core::TrainConfig cfg;
    cfg.epochs = 60;
    cfg.kappa = kappa;
    char label[64];
    std::snprintf(label, sizeof label, "kappa = %g", kappa);
    run(cfg, model, split, label);
  }

  std::printf("\nAblation: grouping distance threshold "
              "(kappa fixed at default)\n");
  for (double threshold : {0.0, 2e-4, 6e-4, 1.2e-3, 4e-3, 1.0}) {
    core::TrainConfig cfg;
    cfg.epochs = 60;
    cfg.distance_threshold = threshold;
    char label[64];
    std::snprintf(label, sizeof label, "threshold = %g", threshold);
    run(cfg, model, split, label);
  }

  std::printf("\nAblation: gradient shot-noise level "
              "(the variance gradient sharing cancels)\n");
  for (double noise : {0.0, 0.06, 0.12, 0.24}) {
    core::TrainConfig cfg;
    cfg.epochs = 60;
    cfg.gradient_shot_noise = noise;
    char label[64];
    std::snprintf(label, sizeof label, "shot-noise sigma = %g", noise);
    run(cfg, model, split, label);
  }
  return 0;
}
