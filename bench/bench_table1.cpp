// Regenerates Table I: convergence epoch and converged loss for
// {single-node, all-sharing, EQC, ArbiterQ} on the four Table II
// benchmarks (Model-CRz and Model-CRx; HMDB51 runs Model-CRz only, as in
// the paper). The fleet is the 10 Table III simulators (printed first).
//
// Shape targets (paper): ArbiterQ converges in the fewest epochs and to
// the lowest loss on every row; all-sharing/EQC sit between; the speedup
// and loss-reduction columns are measured against EQC, like the paper's
// headline 4.03x / 7.87%.
//
// Runtime notes: per-row epoch budgets are sized so every strategy
// plateaus; the HMDB51 row (10 qubits, 200 weights) evaluates the
// per-epoch fleet loss on a 10-sample test subset to bound runtime.

#include <cstring>

#include "bench_util.hpp"

namespace {

using namespace arbiterq;

struct Row {
  data::BenchmarkCase bc;
  qnn::Backbone backbone;
  int epochs;
  std::size_t max_test;
  // The 10-layer HMDB51 circuit's survival probability (~1e-4 under the
  // paper's own gate-error formula) is below the trainable threshold, so
  // that row runs with depolarizing error mitigation (DESIGN.md).
  bool mitigate = false;
};

void print_fleet() {
  std::printf("Table III fleet (10 simulators):\n");
  std::printf("%-12s %9s %9s %7s %7s %7s\n", "QPU", "1q-infid", "2q-infid",
              "T1(us)", "T2(us)", "qubits");
  for (const auto& q : device::table3_fleet(10)) {
    std::printf("%-12s %9.2e %9.2e %7.1f %7.1f %7d\n", q.name().c_str(),
                q.spec().infidelity_1q, q.spec().infidelity_2q,
                q.spec().t1_us, q.spec().t2_us, q.num_qubits());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

  print_fleet();
  std::printf("Table I: training on heterogeneous QPUs "
              "(convergence epoch | converged loss)\n");
  std::printf("%-8s %-10s | %-17s %-17s %-17s %-17s | %8s %9s\n",
              "dataset", "model", "single-node", "all-sharing", "EQC",
              "ArbiterQ", "speedup", "reduction");

  std::vector<Row> rows = {
      {{"iris", 2, 2}, qnn::Backbone::kCRz, 60, 100},
      {{"iris", 2, 2}, qnn::Backbone::kCRx, 60, 100},
      {{"wine", 4, 2}, qnn::Backbone::kCRz, 100, 100},
      {{"wine", 4, 2}, qnn::Backbone::kCRx, 100, 100},
      {{"mnist", 6, 2}, qnn::Backbone::kCRz, 80, 100, false},
      {{"mnist", 6, 2}, qnn::Backbone::kCRx, 80, 100, false},
      {{"hmdb51", 10, 10}, qnn::Backbone::kCRz, 14, 10, true},
  };
  if (quick) rows.resize(4);

  double speedup_product = 1.0;
  double reduction_sum = 0.0;
  std::size_t row_count = 0;

  for (const Row& row : rows) {
    const data::EncodedSplit split =
        bench::limit_test(data::prepare_case(row.bc), row.max_test);
    const qnn::QnnModel model(row.backbone, row.bc.num_qubits,
                              row.bc.num_layers);
    core::TrainConfig cfg;
    cfg.epochs = row.epochs;
    cfg.error_mitigation = row.mitigate;
    const core::DistributedTrainer trainer(
        model, device::table3_fleet(row.bc.num_qubits), cfg);
    const auto outcomes = bench::run_all_strategies(trainer, split);

    const auto& eqc = bench::find(outcomes, core::Strategy::kEqc);
    const auto& arb = bench::find(outcomes, core::Strategy::kArbiterQ);
    const double speedup = static_cast<double>(eqc.convergence.epoch) /
                           static_cast<double>(arb.convergence.epoch);
    const double reduction =
        (eqc.convergence.loss - arb.convergence.loss) /
        eqc.convergence.loss;
    speedup_product *= speedup;
    reduction_sum += reduction;
    ++row_count;

    std::printf("%-8s %-10s |", row.bc.dataset.c_str(),
                qnn::backbone_name(row.backbone).c_str());
    for (core::Strategy s : bench::kAllStrategies) {
      const auto& r = bench::find(outcomes, s);
      std::printf(" %4d ep %10.4f", r.convergence.epoch,
                  r.convergence.loss);
    }
    std::printf(" | %7.2fx %8.2f%%\n", speedup, 100.0 * reduction);
  }

  const double geo_speedup =
      std::pow(speedup_product, 1.0 / static_cast<double>(row_count));
  std::printf("\nvs EQC: geomean convergence speedup %.2fx, "
              "mean loss reduction %.2f%%\n",
              geo_speedup, 100.0 * reduction_sum /
                               static_cast<double>(row_count));
  std::printf("(paper reports 4.03x speedup and 7.87%% loss reduction "
              "vs EQC)\n");
  return 0;
}
