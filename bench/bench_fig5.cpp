// Regenerates Figure 5: loss-vs-epoch convergence curves of the four
// strategies on each benchmark, over the 10-simulator Table III fleet.
// Default runs Iris and Wine (both backbones); pass --full to add MNIST
// and HMDB51 (the latter is the runtime-dominant row).
//
// Shape targets (paper): ArbiterQ's curve descends fastest and ends
// lowest and is the most stable; all-sharing is the worst distributed
// curve.

#include <cstring>

#include "bench_util.hpp"

namespace {

using namespace arbiterq;

void curves(const data::BenchmarkCase& bc, qnn::Backbone backbone,
            int epochs, std::size_t max_test, bool mitigate = false) {
  const data::EncodedSplit split =
      bench::limit_test(data::prepare_case(bc), max_test);
  const qnn::QnnModel model(backbone, bc.num_qubits, bc.num_layers);
  core::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.error_mitigation = mitigate;
  const core::DistributedTrainer trainer(
      model, device::table3_fleet(bc.num_qubits), cfg);

  std::printf("%s / %s (loss every %d epochs):\n", bc.dataset.c_str(),
              qnn::backbone_name(backbone).c_str(),
              std::max(1, epochs / 15));
  const auto outcomes = bench::run_all_strategies(trainer, split);
  for (const auto& o : outcomes) {
    bench::print_series(core::strategy_name(o.strategy).c_str(),
                        o.result.epoch_test_loss,
                        static_cast<std::size_t>(std::max(1, epochs / 15)));
  }
  bench::maybe_write_curves("fig5_" + bc.dataset + "_" +
                                qnn::backbone_name(backbone) + ".csv",
                            outcomes);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = argc > 1 && std::strcmp(argv[1], "--full") == 0;
  std::printf("Fig. 5: convergence across benchmarks "
              "(10-QPU Table III fleet)\n\n");
  curves({"iris", 2, 2}, qnn::Backbone::kCRz, 60, 100);
  curves({"iris", 2, 2}, qnn::Backbone::kCRx, 60, 100);
  curves({"wine", 4, 2}, qnn::Backbone::kCRz, 80, 100);
  curves({"wine", 4, 2}, qnn::Backbone::kCRx, 80, 100);
  if (full) {
    curves({"mnist", 6, 2}, qnn::Backbone::kCRz, 80, 100);
    curves({"mnist", 6, 2}, qnn::Backbone::kCRx, 80, 100);
    curves({"hmdb51", 10, 10}, qnn::Backbone::kCRz, 14, 10, true);
  } else {
    std::printf("(run with --full to add the MNIST and HMDB51 curves)\n");
  }
  return 0;
}
