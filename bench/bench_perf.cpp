// Performance microbenchmarks (google-benchmark): the simulator and
// compiler substrate costs that size every experiment above — state
// vector evolution vs qubit count, exact vs trajectory execution,
// adjoint gradient vs parameter shift, transpilation, and the
// density-matrix reference.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "arbiterq/device/presets.hpp"
#include "arbiterq/telemetry/export.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/sim/adjoint.hpp"
#include "arbiterq/sim/density_matrix.hpp"
#include "arbiterq/sim/simulator.hpp"
#include "arbiterq/transpile/optimize.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace {

using namespace arbiterq;

qnn::QnnModel model_for(int qubits) {
  return qnn::QnnModel(qnn::Backbone::kCRz, qubits, 2);
}

std::vector<double> params_for(const qnn::QnnModel& m) {
  std::vector<double> p(static_cast<std::size_t>(m.num_params()));
  math::Rng rng(13);
  for (double& v : p) v = rng.uniform(-1.5, 1.5);
  return p;
}

void BM_StatevectorForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  sim::StatevectorSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.expectation_z(m.circuit(), params, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StatevectorForward)->DenseRange(2, 14, 2);

void BM_CompiledNoisyForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const qnn::QnnExecutor ex(m, device::table3_fleet(qubits)[0]);
  std::vector<double> features(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.probability(features, weights));
  }
}
BENCHMARK(BM_CompiledNoisyForward)->DenseRange(2, 10, 2);

void BM_AdjointGradient(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::adjoint_gradient_z(m.circuit(), params, 0));
  }
}
BENCHMARK(BM_AdjointGradient)->DenseRange(2, 10, 2);

void BM_ParameterShiftGradient(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const qnn::QnnExecutor ex(m, device::table3_fleet(qubits)[0]);
  std::vector<double> features(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  const std::vector<std::vector<double>> feats = {features};
  const std::vector<int> labels = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.loss_gradient_shift(qnn::LossKind::kMse, feats, labels,
                               weights));
  }
}
BENCHMARK(BM_ParameterShiftGradient)->DenseRange(2, 6, 2);

void BM_TrajectoryShots(benchmark::State& state) {
  const qnn::QnnModel m = model_for(4);
  const qnn::QnnExecutor ex(m, device::table3_fleet(4)[1]);
  std::vector<double> features(4, 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  math::Rng rng(7);
  const int shots = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.sampled_probability(features, weights, shots, rng, 16));
  }
  state.SetItemsProcessed(state.iterations() * shots);
}
BENCHMARK(BM_TrajectoryShots)->Arg(64)->Arg(256)->Arg(1024);

void BM_Transpile(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto fleet = device::table3_fleet(qubits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpile::compile(m.circuit(), fleet[0]));
  }
}
BENCHMARK(BM_Transpile)->DenseRange(2, 10, 2);

void BM_DensityMatrixReference(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  sim::NoiseModel noise(qubits);
  for (int q = 0; q < qubits; ++q) noise.set_depolarizing_1q(q, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::reference_expectation_z(m.circuit(), params, noise, 0));
  }
}
BENCHMARK(BM_DensityMatrixReference)->DenseRange(2, 6, 2);

void BM_BehavioralVectorize(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto fleet = device::table3_fleet(qubits);
  const auto compiled = transpile::compile(m.circuit(), fleet[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::vectorize(compiled, fleet[0], m.circuit().size()));
  }
}
BENCHMARK(BM_BehavioralVectorize)->DenseRange(2, 10, 4);

void BM_OptimizePass(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto compiled =
      transpile::compile(m.circuit(), device::table3_fleet(qubits)[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpile::optimize(compiled.executable));
  }
}
BENCHMARK(BM_OptimizePass)->DenseRange(2, 10, 2);

void BM_ForwardOptimizedVsRaw(benchmark::State& state) {
  // Forward evaluation cost after the peephole pass (compare with
  // BM_CompiledNoisyForward at the same qubit count).
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto dev = device::table3_fleet(qubits)[0];
  const auto compiled = transpile::compile(m.circuit(), dev);
  const auto optimized = transpile::optimize(compiled.executable);
  sim::StatevectorSimulator sim(dev.make_noise_model());
  std::vector<double> params(static_cast<std::size_t>(m.num_params()), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.expectation_z(optimized, params, 0));
  }
}
BENCHMARK(BM_ForwardOptimizedVsRaw)->DenseRange(2, 10, 2);

}  // namespace

// Expanded BENCHMARK_MAIN(): after the benchmarks run, the telemetry
// accumulated across every iteration (simulator/transpiler counters and
// the trace ring) is dumped as JSONL to $ARBITERQ_TELEMETRY_PATH, or
// bench_perf_telemetry.jsonl by default.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const char* env = std::getenv("ARBITERQ_TELEMETRY_PATH");
  const std::string path = env ? env : "bench_perf_telemetry.jsonl";
  try {
    arbiterq::telemetry::JsonlExporter exporter(path);
    exporter.write_global_state();
    exporter.close();
    std::printf("(wrote %s: %zu telemetry lines)\n", path.c_str(),
                exporter.lines_written());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry dump failed: %s\n", e.what());
  }
  return 0;
}
