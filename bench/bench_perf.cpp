// Performance microbenchmarks (google-benchmark): the simulator and
// compiler substrate costs that size every experiment above — state
// vector evolution vs qubit count, exact vs trajectory execution,
// adjoint gradient vs parameter shift, transpilation, and the
// density-matrix reference.
//
// Thread-scaling mode: `bench_perf --threads N` skips the
// google-benchmark suite and instead measures end-to-end fleet training
// plus raw statevector kernels at 1, 2, 4, ... up to N worker threads,
// verifies the parallel runs reproduce the serial loss curve exactly,
// and emits a machine-readable BENCH_perf.json.
//
// Serving-scale mode: `bench_perf --serving-scale` sweeps simulated
// fleet sizes x shard counts through the sharded serving runtime with
// synthetic execution, measuring admission rate and per-shard lock
// contention and verifying admitted results stay bit-identical across
// shard counts.
//
// Plan A/B mode: `bench_perf --plan-ab` pits the compiled-ExecPlan
// executor against the naive per-call circuit walk on the default
// benchmark circuits, verifies forward probabilities and adjoint
// gradients are bit-identical between the two paths, and records the
// forward/gradient/combined speedups in BENCH_perf.json (exit code 2 if
// any output diverges).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arbiterq/circuit/unitary.hpp"
#include "arbiterq/core/behavioral_vector.hpp"
#include "arbiterq/core/trainers.hpp"
#include "arbiterq/data/pipeline.hpp"
#include "arbiterq/device/presets.hpp"
#include "arbiterq/exec/parallel.hpp"
#include "arbiterq/math/rng.hpp"
#include "arbiterq/monitor/slo.hpp"
#include "arbiterq/monitor/watchdog.hpp"
#include "arbiterq/qnn/executor.hpp"
#include "arbiterq/qnn/model.hpp"
#include "arbiterq/serve/flight_recorder.hpp"
#include "arbiterq/serve/runtime.hpp"
#include "arbiterq/serve/trafficgen.hpp"
#include "arbiterq/sim/adjoint.hpp"
#include "arbiterq/sim/density_matrix.hpp"
#include "arbiterq/sim/kernels.hpp"
#include "arbiterq/sim/simulator.hpp"
#include "arbiterq/sim/statevector.hpp"
#include "arbiterq/telemetry/export.hpp"
#include "arbiterq/telemetry/metrics.hpp"
#include "arbiterq/telemetry/timeseries.hpp"
#include "arbiterq/telemetry/trace.hpp"
#include "arbiterq/transpile/optimize.hpp"
#include "arbiterq/transpile/transpiler.hpp"

namespace {

using namespace arbiterq;

qnn::QnnModel model_for(int qubits) {
  return qnn::QnnModel(qnn::Backbone::kCRz, qubits, 2);
}

std::vector<double> params_for(const qnn::QnnModel& m) {
  std::vector<double> p(static_cast<std::size_t>(m.num_params()));
  math::Rng rng(13);
  for (double& v : p) v = rng.uniform(-1.5, 1.5);
  return p;
}

void BM_StatevectorForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  sim::StatevectorSimulator sim;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.expectation_z(m.circuit(), params, 0));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_StatevectorForward)->DenseRange(2, 14, 2);

void BM_CompiledNoisyForward(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const qnn::QnnExecutor ex(m, device::table3_fleet(qubits)[0]);
  std::vector<double> features(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.probability(features, weights));
  }
}
BENCHMARK(BM_CompiledNoisyForward)->DenseRange(2, 10, 2);

void BM_NaiveNoisyForward(benchmark::State& state) {
  // The per-call circuit walk (ExecPlan disabled) — compare with
  // BM_CompiledNoisyForward at the same qubit count for the plan win.
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  qnn::ExecutorOptions opts;
  opts.use_plan = false;
  const qnn::QnnExecutor ex(m, device::table3_fleet(qubits)[0], opts);
  std::vector<double> features(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.probability(features, weights));
  }
}
BENCHMARK(BM_NaiveNoisyForward)->DenseRange(2, 10, 2);

void BM_AdjointGradient(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::adjoint_gradient_z(m.circuit(), params, 0));
  }
}
BENCHMARK(BM_AdjointGradient)->DenseRange(2, 10, 2);

void BM_PlanAdjointGradient(benchmark::State& state) {
  // Plan-based adjoint with warm workspace registers — compare with
  // BM_AdjointGradient at the same qubit count.
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  const sim::ExecPlan plan(m.circuit(), sim::NoiseModel{});
  sim::Workspace ws;
  std::vector<double> grad(static_cast<std::size_t>(m.num_params()));
  for (auto _ : state) {
    sim::adjoint_gradient_z(plan, params, 0, ws, grad);
    benchmark::DoNotOptimize(grad.data());
  }
}
BENCHMARK(BM_PlanAdjointGradient)->DenseRange(2, 10, 2);

void BM_ParameterShiftGradient(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const qnn::QnnExecutor ex(m, device::table3_fleet(qubits)[0]);
  std::vector<double> features(static_cast<std::size_t>(qubits), 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  const std::vector<std::vector<double>> feats = {features};
  const std::vector<int> labels = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.loss_gradient_shift(qnn::LossKind::kMse, feats, labels,
                               weights));
  }
}
BENCHMARK(BM_ParameterShiftGradient)->DenseRange(2, 6, 2);

void BM_TrajectoryShots(benchmark::State& state) {
  const qnn::QnnModel m = model_for(4);
  const qnn::QnnExecutor ex(m, device::table3_fleet(4)[1]);
  std::vector<double> features(4, 0.7);
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()),
                              0.3);
  math::Rng rng(7);
  const int shots = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ex.sampled_probability(features, weights, shots, rng, 16));
  }
  state.SetItemsProcessed(state.iterations() * shots);
}
BENCHMARK(BM_TrajectoryShots)->Arg(64)->Arg(256)->Arg(1024);

void BM_Transpile(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto fleet = device::table3_fleet(qubits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpile::compile(m.circuit(), fleet[0]));
  }
}
BENCHMARK(BM_Transpile)->DenseRange(2, 10, 2);

void BM_DensityMatrixReference(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto params = params_for(m);
  sim::NoiseModel noise(qubits);
  for (int q = 0; q < qubits; ++q) noise.set_depolarizing_1q(q, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::reference_expectation_z(m.circuit(), params, noise, 0));
  }
}
BENCHMARK(BM_DensityMatrixReference)->DenseRange(2, 6, 2);

void BM_BehavioralVectorize(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto fleet = device::table3_fleet(qubits);
  const auto compiled = transpile::compile(m.circuit(), fleet[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::vectorize(compiled, fleet[0], m.circuit().size()));
  }
}
BENCHMARK(BM_BehavioralVectorize)->DenseRange(2, 10, 4);

void BM_OptimizePass(benchmark::State& state) {
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto compiled =
      transpile::compile(m.circuit(), device::table3_fleet(qubits)[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpile::optimize(compiled.executable));
  }
}
BENCHMARK(BM_OptimizePass)->DenseRange(2, 10, 2);

void BM_ForwardOptimizedVsRaw(benchmark::State& state) {
  // Forward evaluation cost after the peephole pass (compare with
  // BM_CompiledNoisyForward at the same qubit count).
  const int qubits = static_cast<int>(state.range(0));
  const qnn::QnnModel m = model_for(qubits);
  const auto dev = device::table3_fleet(qubits)[0];
  const auto compiled = transpile::compile(m.circuit(), dev);
  const auto optimized = transpile::optimize(compiled.executable);
  sim::StatevectorSimulator sim(dev.make_noise_model());
  std::vector<double> params(static_cast<std::size_t>(m.num_params()), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.expectation_z(optimized, params, 0));
  }
}
BENCHMARK(BM_ForwardOptimizedVsRaw)->DenseRange(2, 10, 2);

void BM_FleetEpochThreads(benchmark::State& state) {
  // End-to-end distributed training epochs with the per-QPU work fanned
  // across the pool (compare thread counts at the same workload).
  const data::EncodedSplit split =
      data::prepare_case({"iris", 2, 2}, 42);
  const qnn::QnnModel m(qnn::Backbone::kCRz, 2, 2);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.exec.num_threads = static_cast<int>(state.range(0));
  const core::DistributedTrainer trainer(m, device::table3_fleet_subset(4, 2),
                                         cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trainer.train(core::Strategy::kArbiterQ, split));
  }
}
BENCHMARK(BM_FleetEpochThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Thread-scaling mode (`--threads N`): wall-clock the two workloads the
// engine accelerates and dump BENCH_perf.json.

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ScalingPoint {
  int threads = 1;
  double seconds = 0.0;
  bool equivalent = true;  ///< results match the 1-thread run exactly
};

std::vector<int> thread_sweep(int max_threads) {
  std::vector<int> sweep;
  for (int t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

/// Fleet training: ArbiterQ strategy over `fleet_size` Table III QPUs.
std::vector<ScalingPoint> scale_fleet_training(int max_threads,
                                               int fleet_size, int epochs) {
  const data::BenchmarkCase bc{"wine", 4, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 42);
  const qnn::QnnModel m(qnn::Backbone::kCRz, bc.num_qubits, bc.num_layers);
  std::vector<ScalingPoint> points;
  std::vector<double> baseline_losses;
  for (int t : thread_sweep(max_threads)) {
    core::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.exec.num_threads = t;
    const core::DistributedTrainer trainer(
        m, device::table3_fleet_subset(fleet_size, bc.num_qubits), cfg);
    const double t0 = now_seconds();
    const core::TrainResult r =
        trainer.train(core::Strategy::kArbiterQ, split);
    ScalingPoint p;
    p.threads = t;
    p.seconds = now_seconds() - t0;
    if (t == 1) {
      baseline_losses = r.epoch_test_loss;
    } else {
      p.equivalent = r.epoch_test_loss == baseline_losses;
    }
    points.push_back(p);
    std::printf("  fleet training  threads=%2d  %.3fs  speedup %.2fx  "
                "equivalent=%s\n",
                t, p.seconds, points.front().seconds / p.seconds,
                p.equivalent ? "yes" : "NO");
  }
  return points;
}

/// Raw stride kernels: repeated 1q butterflies + diagonal 2q passes over
/// a large register.
std::vector<ScalingPoint> scale_statevector_kernels(int max_threads,
                                                    int qubits, int sweeps) {
  const circuit::Mat2 ry =
      circuit::gate_matrix_1q(circuit::GateKind::kRY, {0.3, 0.0, 0.0});
  const circuit::Mat4 crz =
      circuit::gate_matrix_2q(circuit::GateKind::kCRZ, {0.7, 0.0, 0.0});
  std::vector<ScalingPoint> points;
  sim::AmpVector baseline;
  for (int t : thread_sweep(max_threads)) {
    sim::Statevector sv(qubits);
    exec::ExecPolicy policy;
    policy.num_threads = t;
    sv.set_exec_policy(policy);
    const double t0 = now_seconds();
    for (int s = 0; s < sweeps; ++s) {
      for (int q = 0; q < qubits; ++q) sv.apply_mat2(ry, q);
      for (int q = 0; q + 1 < qubits; ++q) sv.apply_mat4(crz, q + 1, q);
    }
    ScalingPoint p;
    p.threads = t;
    p.seconds = now_seconds() - t0;
    if (t == 1) {
      baseline = sv.amplitudes();
    } else {
      p.equivalent = sv.amplitudes() == baseline;
    }
    points.push_back(p);
    std::printf("  sv kernels      threads=%2d  %.3fs  speedup %.2fx  "
                "equivalent=%s\n",
                t, p.seconds, points.front().seconds / p.seconds,
                p.equivalent ? "yes" : "NO");
  }
  return points;
}

void write_points(std::FILE* f, const std::vector<ScalingPoint>& points) {
  std::fprintf(f, "[");
  for (std::size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f,
                 "%s{\"threads\": %d, \"seconds\": %.6f, "
                 "\"speedup\": %.4f, \"equivalent\": %s}",
                 i ? ", " : "", points[i].threads, points[i].seconds,
                 points.front().seconds / points[i].seconds,
                 points[i].equivalent ? "true" : "false");
  }
  std::fprintf(f, "]");
}

int run_scaling_mode(int max_threads, int fleet_size, int epochs,
                     const std::string& out_path) {
  std::printf("thread-scaling mode: up to %d threads "
              "(fleet %d, %d epochs)\n",
              max_threads, fleet_size, epochs);
  const auto fleet = scale_fleet_training(max_threads, fleet_size, epochs);
  const int sv_qubits = 18;
  const auto kernels =
      scale_statevector_kernels(max_threads, sv_qubits, /*sweeps=*/20);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"mode\": \"thread-scaling\",\n");
  std::fprintf(f, "  \"max_threads\": %d,\n", max_threads);
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               exec::resolve_threads(0));
  std::fprintf(f,
               "  \"fleet_training\": {\"dataset\": \"wine\", "
               "\"fleet\": %d, \"epochs\": %d, \"strategy\": \"arbiterq\", "
               "\"results\": ",
               fleet_size, epochs);
  write_points(f, fleet);
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"statevector_kernels\": {\"qubits\": %d, "
               "\"results\": ",
               sv_qubits);
  write_points(f, kernels);
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  bool all_equivalent = true;
  for (const auto& p : fleet) all_equivalent &= p.equivalent;
  for (const auto& p : kernels) all_equivalent &= p.equivalent;
  return all_equivalent ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Plan A/B mode (`--plan-ab`): the kernel A/B matrix. For each benchmark
// circuit size the compiled-plan executor runs under all four
// {scalar, SIMD} x {unbatched, batched} arms, plus the naive per-call
// circuit walk as context, with every output verified bit-identical
// across arms before the clocks count (default strict-reproducibility
// arm; exit code 2 on any divergence). Each arm reports the median of
// `kAbReps` timed repetitions together with its iteration counts, and
// the headline combined speedup pits SIMD+batched against
// scalar+unbatched.

constexpr int kAbReps = 5;
constexpr int kAbBatch = 8;  ///< samples per dataset call (mini-GEMM width)

struct ArmTiming {
  bool simd = false;
  bool batched = false;
  double forward_median_s = 0.0;
  double gradient_median_s = 0.0;
};

struct PlanAbPoint {
  int qubits = 0;
  std::size_t gates = 0;
  std::size_t fused_gates = 0;
  std::size_t stream_ops = 0;
  int forward_iters = 0;   ///< dataset_loss calls per rep (x kAbBatch samples)
  int gradient_iters = 0;  ///< loss_gradient calls per rep
  ArmTiming arms[4];       ///< [simd*2 + batched]
  double naive_forward_s = 0.0;   // per-call circuit walk, SIMD on
  double naive_gradient_s = 0.0;
  bool identical = true;
};

double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

/// One circuit size: build the naive walker plus planned executors with
/// the sample-batched forward off/on, check losses and adjoint gradients
/// bitwise across the naive path and all four kernel arms, then clock
/// each arm.
PlanAbPoint measure_plan_ab(int qubits, int forward_iters,
                            int gradient_iters) {
  const qnn::QnnModel m = model_for(qubits);
  const device::Qpu dev = device::table3_fleet(qubits)[0];
  qnn::ExecutorOptions naive_opts;
  naive_opts.use_plan = false;
  const qnn::QnnExecutor naive(m, dev, naive_opts);
  qnn::ExecutorOptions unbatched_opts;
  unbatched_opts.batched_forward = false;
  const qnn::QnnExecutor plan_unbatched(m, dev, unbatched_opts);
  const qnn::QnnExecutor plan_batched(m, dev);

  math::Rng rng(17u + static_cast<std::uint64_t>(qubits));
  std::vector<std::vector<double>> feats;
  std::vector<int> labels;
  for (int s = 0; s < kAbBatch; ++s) {
    std::vector<double> row(static_cast<std::size_t>(qubits));
    for (double& v : row) v = rng.uniform(0.0, 1.0);
    feats.push_back(std::move(row));
    labels.push_back(s % 2);
  }
  std::vector<double> weights(static_cast<std::size_t>(m.num_weights()));
  for (double& v : weights) v = rng.uniform(-1.5, 1.5);

  PlanAbPoint p;
  p.qubits = qubits;
  p.forward_iters = forward_iters;
  p.gradient_iters = gradient_iters;
  if (const sim::ExecPlan* plan = plan_batched.plan()) {
    p.gates = plan->gate_count();
    p.fused_gates = plan->fused_gate_count();
    p.stream_ops = plan->stream_op_count();
  }

  const bool simd_was = sim::kernels::simd_runtime_enabled();
  const auto loss_of = [&](const qnn::QnnExecutor& ex) {
    return ex.dataset_loss(qnn::LossKind::kMse, feats, labels, weights);
  };
  const auto grad_of = [&](const qnn::QnnExecutor& ex) {
    return ex.loss_gradient(qnn::LossKind::kMse, feats, labels, weights);
  };

  // Bitwise verification across the naive walk and all four kernel arms
  // (also warms every workspace pool the clocks touch).
  sim::kernels::set_simd_runtime_enabled(false);
  const double ref_loss = loss_of(naive);
  const std::vector<double> ref_grad = grad_of(naive);
  for (bool simd : {false, true}) {
    sim::kernels::set_simd_runtime_enabled(simd);
    for (const qnn::QnnExecutor* ex : {&plan_unbatched, &plan_batched}) {
      p.identical &= loss_of(*ex) == ref_loss;
      p.identical &= grad_of(*ex) == ref_grad;
      for (const auto& f : feats) {
        p.identical &=
            ex->probability(f, weights) == naive.probability(f, weights);
      }
    }
  }

  // Median-of-kAbReps wall clocks per arm.
  double sink = 0.0;
  const auto clock_arm = [&](const qnn::QnnExecutor& ex, bool simd,
                             double* fwd, double* grd) {
    sim::kernels::set_simd_runtime_enabled(simd);
    std::vector<double> fwd_reps, grd_reps;
    for (int rep = 0; rep < kAbReps; ++rep) {
      double t0 = now_seconds();
      for (int r = 0; r < forward_iters; ++r) sink += loss_of(ex);
      fwd_reps.push_back(now_seconds() - t0);
      t0 = now_seconds();
      for (int r = 0; r < gradient_iters; ++r) sink += grad_of(ex)[0];
      grd_reps.push_back(now_seconds() - t0);
    }
    *fwd = median_of(fwd_reps);
    *grd = median_of(grd_reps);
  };
  for (int simd = 0; simd < 2; ++simd) {
    for (int batched = 0; batched < 2; ++batched) {
      ArmTiming& arm = p.arms[2 * simd + batched];
      arm.simd = simd != 0;
      arm.batched = batched != 0;
      clock_arm(batched ? plan_batched : plan_unbatched, arm.simd,
                &arm.forward_median_s, &arm.gradient_median_s);
    }
  }
  clock_arm(naive, true, &p.naive_forward_s, &p.naive_gradient_s);
  sim::kernels::set_simd_runtime_enabled(simd_was);
  benchmark::DoNotOptimize(sink);

  const ArmTiming& base = p.arms[0];  // scalar + unbatched
  const ArmTiming& best = p.arms[3];  // SIMD + batched
  std::printf("  plan-ab q=%d  forward %.2fx  gradient %.2fx  combined "
              "%.2fx  identical=%s\n",
              qubits, base.forward_median_s / best.forward_median_s,
              base.gradient_median_s / best.gradient_median_s,
              (base.forward_median_s + base.gradient_median_s) /
                  (best.forward_median_s + best.gradient_median_s),
              p.identical ? "yes" : "NO");
  return p;
}

int run_plan_ab_mode(const std::string& out_path) {
  std::printf("plan A/B mode: kernel matrix scalar/SIMD x "
              "unbatched/batched (arch %s, strict=%s)\n",
              sim::kernels::arch_name(sim::kernels::active_arch()),
              sim::kernels::strict_reproducibility() ? "on" : "off");
  // The default set mirrors the training workloads the plan accelerates:
  // the paper's Table I models are 2-qubit (iris) and 4-qubit (wine/
  // breast-cancer) backbones; 6 qubits adds headroom beyond them.
  const std::vector<int> qubit_set = {2, 4, 6};
  std::vector<PlanAbPoint> points;
  for (int q : qubit_set) {
    points.push_back(
        measure_plan_ab(q, /*forward_iters=*/120, /*gradient_iters=*/60));
  }

  // Suite aggregates are geometric means over the benchmark circuits, so
  // each circuit counts once (the standard suite metric); a total-time
  // ratio would just re-measure the largest register, whose per-call
  // cost dwarfs the smallest.
  double log_fwd = 0.0, log_grad = 0.0, log_combined = 0.0;
  double combined_6q = 0.0;
  bool identical = true;
  for (const auto& p : points) {
    const ArmTiming& base = p.arms[0];
    const ArmTiming& best = p.arms[3];
    log_fwd += std::log(base.forward_median_s / best.forward_median_s);
    log_grad += std::log(base.gradient_median_s / best.gradient_median_s);
    const double combined =
        (base.forward_median_s + base.gradient_median_s) /
        (best.forward_median_s + best.gradient_median_s);
    log_combined += std::log(combined);
    if (p.qubits == 6) combined_6q = combined;
    identical &= p.identical;
  }
  const double n = static_cast<double>(points.size());
  const double forward_speedup = std::exp(log_fwd / n);
  const double gradient_speedup = std::exp(log_grad / n);
  const double combined_speedup = std::exp(log_combined / n);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"mode\": \"plan-ab\",\n");
  std::fprintf(f, "  \"identical\": %s,\n", identical ? "true" : "false");
  std::fprintf(f, "  \"kernel_arch\": \"%s\",\n",
               sim::kernels::arch_name(sim::kernels::active_arch()));
  std::fprintf(f, "  \"strict_reproducibility\": %s,\n",
               sim::kernels::strict_reproducibility() ? "true" : "false");
  std::fprintf(f,
               "  \"baseline_arm\": \"scalar unbatched plan\", "
               "\"speedup_arm\": \"simd batched plan\",\n");
  std::fprintf(f,
               "  \"timing\": \"median of %d reps per arm; iterations "
               "are calls per rep, forward calls cover %d samples "
               "each\",\n",
               kAbReps, kAbBatch);
  std::fprintf(f, "  \"aggregate\": \"geometric mean over circuits\",\n");
  std::fprintf(f, "  \"forward_speedup\": %.4f,\n", forward_speedup);
  std::fprintf(f, "  \"gradient_speedup\": %.4f,\n", gradient_speedup);
  std::fprintf(f, "  \"combined_speedup\": %.4f,\n", combined_speedup);
  std::fprintf(f, "  \"combined_speedup_6q\": %.4f,\n", combined_6q);
  std::fprintf(f, "  \"target_combined_speedup_6q\": 3.0,\n");
  std::fprintf(f, "  \"circuits\": [");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const PlanAbPoint& p = points[i];
    const ArmTiming& base = p.arms[0];
    const ArmTiming& best = p.arms[3];
    std::fprintf(
        f,
        "%s\n    {\"qubits\": %d, \"layers\": 2, \"gates\": %zu, "
        "\"fused_gates\": %zu, \"stream_ops\": %zu, \"batch\": %d, "
        "\"reps\": %d, \"forward_iterations\": %d, "
        "\"gradient_iterations\": %d,\n     \"arms\": [",
        i ? "," : "", p.qubits, p.gates, p.fused_gates, p.stream_ops,
        kAbBatch, kAbReps, p.forward_iters, p.gradient_iters);
    for (int a = 0; a < 4; ++a) {
      const ArmTiming& arm = p.arms[a];
      std::fprintf(f,
                   "%s\n      {\"kernels\": \"%s\", \"batched\": %s, "
                   "\"forward_median_seconds\": %.6f, "
                   "\"gradient_median_seconds\": %.6f}",
                   a ? "," : "", arm.simd ? "simd" : "scalar",
                   arm.batched ? "true" : "false", arm.forward_median_s,
                   arm.gradient_median_s);
    }
    std::fprintf(
        f,
        "],\n     \"naive\": {\"forward_median_seconds\": %.6f, "
        "\"gradient_median_seconds\": %.6f},\n"
        "     \"forward_speedup\": %.4f, \"gradient_speedup\": %.4f, "
        "\"combined_speedup\": %.4f, \"identical\": %s}",
        p.naive_forward_s, p.naive_gradient_s,
        base.forward_median_s / best.forward_median_s,
        base.gradient_median_s / best.gradient_median_s,
        (base.forward_median_s + base.gradient_median_s) /
            (best.forward_median_s + best.gradient_median_s),
        p.identical ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("forward %.2fx  gradient %.2fx  combined %.2fx (geomean; "
              "6q combined %.2fx)  identical=%s\n",
              forward_speedup, gradient_speedup, combined_speedup,
              combined_6q, identical ? "yes" : "NO");
  return identical ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Telemetry A/B mode (`--telemetry-ab`): the same fleet-training workload
// clocked with the runtime telemetry switch on and off (spans + metric
// macros become no-ops when off; explicit sinks are unaffected), plus a
// third arm with a live time-series Collector sampling the registry at
// 50ms. The loss curves must match exactly across all arms —
// instrumentation is observational only — and the on/off wall-clock
// ratio is the instrumentation overhead, targeted at < 5% (documented in
// DESIGN.md; not enforced by exit code because CI machines are noisy).
//
// In ARBITERQ_TELEMETRY=OFF builds the macros compile away entirely, so
// both arms run the stripped code and the ratio measures the runtime
// branch alone; "telemetry_compiled" in the JSON records which case ran.

int run_telemetry_ab_mode(const std::string& out_path) {
  std::printf("telemetry A/B mode: runtime switch on vs off\n");
  // 6 qubits so gate arithmetic dominates: the per-gate instrumentation
  // cost is fixed, so tiny circuits would overstate the relative overhead.
  const data::BenchmarkCase bc{"wine", 6, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 42);
  const qnn::QnnModel m(qnn::Backbone::kCRz, bc.num_qubits, bc.num_layers);
  core::TrainConfig cfg;
  cfg.epochs = 40;
  const core::DistributedTrainer trainer(
      m, device::table3_fleet_subset(6, bc.num_qubits), cfg);

  std::vector<double> losses_on, losses_off;
  const auto timed_run = [&](bool enabled, std::vector<double>* losses) {
    telemetry::set_telemetry_runtime_enabled(enabled);
    const double t0 = now_seconds();
    const core::TrainResult r =
        trainer.train(core::Strategy::kArbiterQ, split);
    const double s = now_seconds() - t0;
    *losses = r.epoch_test_loss;
    return s;
  };
  // The arms run in adjacent (off, on) pairs so each pair sees the same
  // machine-load conditions; the median of the per-pair ratios is robust
  // to bursty noise that best-of-N across arms is not. One discarded
  // warm-up run eats one-time init costs, and the loop ends with
  // telemetry live for the final dump.
  // Third arm: telemetry on with a live Collector thread folding the
  // global registry into a TimeSeriesStore every 50ms — the full
  // time-series pipeline whose budget DESIGN.md documents.
  std::vector<double> losses_col;
  const auto timed_collector_run = [&](std::vector<double>* losses) {
    telemetry::TimeSeriesStore store;
    telemetry::CollectorOptions co;
    co.cadence_us = 50'000.0;
    telemetry::Collector collector(store,
                                   telemetry::MetricsRegistry::global(),
                                   co);
    collector.start();
    const double s = timed_run(true, losses);
    collector.stop();
    return s;
  };

  telemetry::set_telemetry_runtime_enabled(true);
  (void)trainer.train(core::Strategy::kArbiterQ, split);
  double off_s = 1e300, on_s = 1e300, col_s = 1e300;
  std::vector<double> ratios, col_ratios;
  for (int rep = 0; rep < 9; ++rep) {
    const double off_rep = timed_run(false, &losses_off);
    const double on_rep = timed_run(true, &losses_on);
    const double col_rep = timed_collector_run(&losses_col);
    off_s = std::min(off_s, off_rep);
    on_s = std::min(on_s, on_rep);
    col_s = std::min(col_s, col_rep);
    ratios.push_back(on_rep / off_rep);
    col_ratios.push_back(col_rep / off_rep);
  }
  telemetry::set_telemetry_runtime_enabled(true);
  std::sort(ratios.begin(), ratios.end());
  std::sort(col_ratios.begin(), col_ratios.end());

  const bool equivalent =
      losses_on == losses_off && losses_col == losses_off;
  const double ratio = ratios[ratios.size() / 2];
  const double col_ratio = col_ratios[col_ratios.size() / 2];
#ifdef ARBITERQ_TELEMETRY_ENABLED
  const bool compiled = true;
#else
  const bool compiled = false;
#endif

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"mode\": \"telemetry-ab\",\n");
  std::fprintf(f, "  \"telemetry_compiled\": %s,\n",
               compiled ? "true" : "false");
  std::fprintf(f,
               "  \"workload\": {\"dataset\": \"wine\", \"qubits\": 6, "
               "\"fleet\": 6, \"epochs\": 40, \"strategy\": \"arbiterq\"},\n");
  std::fprintf(f,
               "  \"timing\": \"median of 9 paired on/off ratios; "
               "seconds are per-arm minima\",\n");
  std::fprintf(f, "  \"telemetry_on_seconds\": %.6f,\n", on_s);
  std::fprintf(f, "  \"telemetry_off_seconds\": %.6f,\n", off_s);
  std::fprintf(f, "  \"telemetry_collector_seconds\": %.6f,\n", col_s);
  std::fprintf(f, "  \"overhead_ratio\": %.4f,\n", ratio);
  std::fprintf(f, "  \"overhead_percent\": %.2f,\n", 100.0 * (ratio - 1.0));
  std::fprintf(f, "  \"collector_overhead_ratio\": %.4f,\n", col_ratio);
  std::fprintf(f, "  \"collector_overhead_percent\": %.2f,\n",
               100.0 * (col_ratio - 1.0));
  std::fprintf(f, "  \"overhead_target_percent\": 5.0,\n");
  std::fprintf(f, "  \"equivalent\": %s\n}\n",
               equivalent ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("telemetry on %.3fs  off %.3fs  collector %.3fs  "
              "overhead %.2f%% (collector %.2f%%)  equivalent=%s\n",
              on_s, off_s, col_s, 100.0 * (ratio - 1.0),
              100.0 * (col_ratio - 1.0), equivalent ? "yes" : "NO");
  return equivalent ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Serving sweeps write an append-only trajectory instead of overwriting:
// each run becomes one timestamped entry in a "runs" array, so repeated
// sweeps on a branch accumulate a perf history a human (or a regression
// script) can diff. The document shape is stable:
//
//   { "mode": "<mode>", "schema": 1, "runs": [ {entry}, {entry}, ... ] }
//
// When the existing file does not match this shape (older flat schema, a
// different mode, or garbage), it is replaced with a fresh one-entry
// document rather than corrupted by a blind splice.

std::string utc_timestamp() {
  char buf[32];
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// printf-append onto a std::string (entry bodies are built in memory so
/// the splice below can treat them as opaque text).
void jsonf(std::string* out, const char* fmt, ...) {
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  *out += buf;
}

int append_run_entry(const std::string& out_path, const std::string& mode,
                     const std::string& entry) {
  const std::string header =
      "{\n  \"mode\": \"" + mode + "\",\n  \"schema\": 1,\n  \"runs\": [\n";
  const std::string footer = "\n  ]\n}\n";
  std::string prior;
  if (std::FILE* in = std::fopen(out_path.c_str(), "rb")) {
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) {
      prior.append(buf, n);
    }
    std::fclose(in);
  }
  std::string doc;
  if (prior.size() > header.size() + footer.size() &&
      prior.compare(0, header.size(), header) == 0 &&
      prior.compare(prior.size() - footer.size(), footer.size(), footer) ==
          0) {
    doc = prior.substr(0, prior.size() - footer.size());
    doc += ",\n";
  } else {
    doc = header;
  }
  doc += entry;
  doc += footer;
  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Serving mode (`--serving`): wall-clock the fleet serving runtime under
// fault injection — async job queue, per-QPU workers, retry re-routing and
// a mid-run QPU dropout with torus repartitioning — and record throughput
// plus the latency histogram's p50/p99 in BENCH_perf.json. The workload
// runs twice with the same seed; per-job outputs must be bit-identical
// (exit code 2 otherwise), the serving determinism guarantee.

// Shared serving workload: 6-QPU fleet, iris 2q2l, per-QPU personalized
// weights from deterministic draws (the benches measure serving
// mechanics, not model quality). Used by --serving and --serving-obs.
struct ServingWorkload {
  data::EncodedSplit split;
  std::unique_ptr<core::DistributedTrainer> trainer;
  std::vector<std::vector<double>> weights;
  int fleet_size = 6;
};

ServingWorkload make_serving_workload() {
  ServingWorkload w;
  const data::BenchmarkCase bc{"iris", 2, 2};
  w.split = data::prepare_case(bc, 42);
  const qnn::QnnModel m(qnn::Backbone::kCRz, bc.num_qubits, bc.num_layers);
  core::TrainConfig tcfg;
  w.trainer = std::make_unique<core::DistributedTrainer>(
      m, device::table3_fleet_subset(w.fleet_size, bc.num_qubits), tcfg);
  math::Rng wrng(42);
  for (int q = 0; q < w.fleet_size; ++q) {
    std::vector<double> wq(static_cast<std::size_t>(m.num_weights()));
    math::Rng qrng = wrng.split(static_cast<std::uint64_t>(q));
    for (double& x : wq) x = qrng.normal(0.0, 0.3);
    w.weights.push_back(std::move(wq));
  }
  return w;
}

int run_serving_mode(const std::string& out_path, std::size_t n_jobs) {
  std::printf("serving mode: fleet runtime under fault injection "
              "(%zu jobs)\n", n_jobs);
  const ServingWorkload w = make_serving_workload();
  const int fleet_size = w.fleet_size;
  const data::EncodedSplit& split = w.split;
  const core::DistributedTrainer& trainer = *w.trainer;

  const std::string fault_spec = "kill:1@120,transient:0.02,lag:8";
  serve::FaultConfig fcfg = serve::FaultInjector::parse(fault_spec);
  const serve::FaultInjector faults(static_cast<std::size_t>(fleet_size),
                                    fcfg);

  struct ServingRun {
    std::vector<serve::JobResult> results;
    serve::ServingReport report;
    std::size_t epochs = 0;
    std::vector<serve::FlightRecord> flight;
    std::string flight_jsonl;
  };
  const auto run_once = [&]() {
    serve::ServeConfig sc;
    sc.shots_per_job = 128;
    sc.trajectories = 8;
    sc.backoff_base_us = 5.0;  // keep the bench snappy
    sc.backoff_max_us = 100.0;
    // Size the queue for the whole workload: admission rejects depend on
    // live occupancy and would break the run-to-run determinism check.
    sc.queue_capacity = n_jobs * static_cast<std::size_t>(fleet_size);
    serve::FlightRecorder flight(n_jobs + 1);
    serve::ServingRuntime runtime(trainer.executors(), w.weights,
                                  trainer.behavioral_vectors(), sc,
                                  &faults, nullptr, &flight);
    for (std::size_t i = 0; i < n_jobs; ++i) {
      serve::JobSpec spec;
      spec.features = split.test_features[i % split.test_features.size()];
      spec.label = split.test_labels[i % split.test_labels.size()];
      // Every 8th job carries an unmeetable modeled-time deadline, so
      // the dropout scenario deterministically produces deadline-missed
      // jobs for the flight-recorder coverage check below.
      if (i % 8 == 0) spec.deadline_us = 1e-3;
      runtime.submit(spec);
    }
    runtime.drain();
    ServingRun out;
    out.results = runtime.results();
    out.report = runtime.report();
    out.epochs = runtime.epochs();
    out.flight = flight.snapshot();
    out.flight_jsonl = flight.to_jsonl();
    return out;
  };

  telemetry::MetricsRegistry::global().reset_values();
  const ServingRun a = run_once();
  double p50 = 0.0, p99 = 0.0, vp50 = 0.0, vp99 = 0.0;
  for (const auto& h :
       telemetry::MetricsRegistry::global().snapshot().histograms) {
    if (h.name == "serve.job.latency_us") {
      p50 = h.p50();
      p99 = h.p99();
    } else if (h.name == "serve.job.virtual_latency_us") {
      vp50 = h.p50();
      vp99 = h.p99();
    }
  }

  // Determinism check: same seed, fresh runtime, bit-identical jobs.
  const ServingRun b = run_once();
  bool deterministic = a.results.size() == b.results.size();
  if (deterministic) {
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      deterministic &= a.results[i].status == b.results[i].status &&
                       a.results[i].probability == b.results[i].probability &&
                       a.results[i].retries == b.results[i].retries &&
                       a.results[i].virtual_latency_us ==
                           b.results[i].virtual_latency_us;
    }
  }

  // Flight-recorder coverage: every dropped, deadline-missed, or
  // retry-exhausted job must have left a postmortem record, and the
  // record dump (modeled quantities only) must reproduce byte-for-byte.
  std::size_t bad_jobs = 0, covered = 0;
  for (const serve::JobResult& jr : a.results) {
    if (jr.status == serve::JobStatus::kOk) continue;
    ++bad_jobs;
    for (const serve::FlightRecord& fr : a.flight) {
      if (fr.job == jr.id) {
        ++covered;
        break;
      }
    }
  }
  const bool flight_covered = covered == bad_jobs;
  const bool flight_deterministic = a.flight_jsonl == b.flight_jsonl;

  const serve::ServingReport& rep = a.report;
  std::string e;
  jsonf(&e, "    {\"timestamp\": \"%s\",\n", utc_timestamp().c_str());
  jsonf(&e, "     \"fleet\": %d, \"jobs\": %zu, \"shots_per_job\": 128, "
            "\"faults\": \"%s\",\n", fleet_size, n_jobs,
        fault_spec.c_str());
  jsonf(&e, "     \"completed\": %zu, \"rejected\": %zu, \"expired\": %zu, "
            "\"failed\": %zu, \"retries\": %llu,\n", rep.completed,
        rep.rejected, rep.expired, rep.failed,
        static_cast<unsigned long long>(rep.retries));
  jsonf(&e, "     \"dropouts_detected\": %zu, \"repartitions\": %zu, "
            "\"epochs\": %zu,\n", rep.dropouts_detected, rep.repartitions,
        a.epochs);
  jsonf(&e, "     \"wall_seconds\": %.6f, \"throughput_jobs_per_s\": "
            "%.2f,\n", rep.wall_seconds, rep.throughput_jobs_per_s);
  jsonf(&e, "     \"latency_us\": {\"wall_p50\": %.2f, \"wall_p99\": %.2f, "
            "\"virtual_p50\": %.2f, \"virtual_p99\": %.2f},\n",
        p50, p99, vp50, vp99);
  jsonf(&e, "     \"flight_records\": %zu, \"flight_coverage\": "
            "\"%zu/%zu\", \"flight_covered\": %s,\n", a.flight.size(),
        covered, bad_jobs, flight_covered ? "true" : "false");
  jsonf(&e, "     \"flight_deterministic\": %s, \"deterministic\": %s}",
        flight_deterministic ? "true" : "false",
        deterministic ? "true" : "false");
  if (const int rc = append_run_entry(out_path, "serving", e)) return rc;
  std::printf("serving: %zu jobs ok, %llu retries, %zu dropouts, "
              "%.1f jobs/s, p50 %.1fus p99 %.1fus, deterministic=%s, "
              "flight %zu/%zu (dump deterministic=%s)\n",
              rep.completed,
              static_cast<unsigned long long>(rep.retries),
              rep.dropouts_detected, rep.throughput_jobs_per_s, p50, p99,
              deterministic ? "yes" : "NO", covered, bad_jobs,
              flight_deterministic ? "yes" : "NO");
  return deterministic && flight_covered && flight_deterministic ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Serving observability A/B mode (`--serving-obs`): the serving workload
// clocked under three tracing regimes — off, sampled (every 8th job), and
// full per-job tracing — in adjacent triples so each triple sees the same
// machine conditions (median-of-ratios, like --telemetry-ab). Per-job
// outputs must be bit-identical across all three regimes (tracing is
// observational only; exit code 2 otherwise). The full-tracing overhead
// ratio is targeted at < 5% and recorded, not enforced: CI machines are
// noisy.

int run_serving_obs_mode(const std::string& out_path, std::size_t n_jobs) {
  std::printf("serving observability A/B: tracing off / sampled / full "
              "(%zu jobs)\n", n_jobs);
  const ServingWorkload w = make_serving_workload();
  const data::EncodedSplit& split = w.split;
  const core::DistributedTrainer& trainer = *w.trainer;
  const std::string fault_spec = "kill:1@120,transient:0.02,lag:8";
  const serve::FaultInjector faults(
      static_cast<std::size_t>(w.fleet_size),
      serve::FaultInjector::parse(fault_spec));

  struct ObsRun {
    std::vector<serve::JobResult> results;
    double seconds = 0.0;
  };
  const auto run_once = [&](int sample_every) {
    telemetry::TraceBuffer::global().clear();
    serve::ServeConfig sc;
    sc.shots_per_job = 128;
    sc.trajectories = 8;
    sc.backoff_base_us = 5.0;
    sc.backoff_max_us = 100.0;
    sc.queue_capacity = n_jobs * static_cast<std::size_t>(w.fleet_size);
    sc.trace_sample_every = sample_every;
    ObsRun out;
    const double t0 = now_seconds();
    {
      serve::ServingRuntime runtime(trainer.executors(), w.weights,
                                    trainer.behavioral_vectors(), sc,
                                    &faults);
      for (std::size_t i = 0; i < n_jobs; ++i) {
        serve::JobSpec spec;
        spec.features = split.test_features[i % split.test_features.size()];
        spec.label = split.test_labels[i % split.test_labels.size()];
        runtime.submit(spec);
      }
      runtime.drain();
      out.results = runtime.results();
    }
    out.seconds = now_seconds() - t0;
    return out;
  };

  telemetry::set_telemetry_runtime_enabled(true);
  (void)run_once(0);  // warm-up eats one-time init costs

  double off_s = 1e300, sampled_s = 1e300, full_s = 1e300;
  std::vector<double> sampled_ratios, full_ratios;
  std::vector<serve::JobResult> res_off, res_sampled, res_full;
  for (int rep = 0; rep < 5; ++rep) {
    const ObsRun off = run_once(0);
    const ObsRun sampled = run_once(8);
    const ObsRun full = run_once(1);
    off_s = std::min(off_s, off.seconds);
    sampled_s = std::min(sampled_s, sampled.seconds);
    full_s = std::min(full_s, full.seconds);
    sampled_ratios.push_back(sampled.seconds / off.seconds);
    full_ratios.push_back(full.seconds / off.seconds);
    if (rep == 0) {
      res_off = off.results;
      res_sampled = sampled.results;
      res_full = full.results;
    }
  }
  std::sort(sampled_ratios.begin(), sampled_ratios.end());
  std::sort(full_ratios.begin(), full_ratios.end());
  const double sampled_ratio = sampled_ratios[sampled_ratios.size() / 2];
  const double full_ratio = full_ratios[full_ratios.size() / 2];

  // Admitted-set bit-identity across all three tracing regimes.
  const auto same = [](const std::vector<serve::JobResult>& x,
                       const std::vector<serve::JobResult>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i].status != y[i].status ||
          x[i].probability != y[i].probability ||
          x[i].retries != y[i].retries ||
          x[i].virtual_latency_us != y[i].virtual_latency_us) {
        return false;
      }
    }
    return true;
  };
  const bool identical =
      same(res_off, res_sampled) && same(res_off, res_full);

  std::string e;
  jsonf(&e, "    {\"timestamp\": \"%s\",\n", utc_timestamp().c_str());
  jsonf(&e, "     \"fleet\": %d, \"jobs\": %zu, \"faults\": \"%s\",\n",
        w.fleet_size, n_jobs, fault_spec.c_str());
  jsonf(&e, "     \"timing\": \"median of 5 off/sampled/full triples; "
            "seconds are per-arm minima\",\n");
  jsonf(&e, "     \"trace_off_seconds\": %.6f, \"trace_sampled_seconds\": "
            "%.6f, \"trace_full_seconds\": %.6f,\n", off_s, sampled_s,
        full_s);
  jsonf(&e, "     \"sampled_overhead_ratio\": %.4f, "
            "\"full_overhead_ratio\": %.4f, \"full_overhead_percent\": "
            "%.2f,\n", sampled_ratio, full_ratio,
        100.0 * (full_ratio - 1.0));
  jsonf(&e, "     \"overhead_target_percent\": 5.0, \"identical\": %s}",
        identical ? "true" : "false");
  if (const int rc = append_run_entry(out_path, "serving-obs", e)) return rc;
  std::printf("serving-obs: off %.3fs  sampled %.3fs (%+.2f%%)  "
              "full %.3fs (%+.2f%%)  identical=%s\n",
              off_s, sampled_s, 100.0 * (sampled_ratio - 1.0), full_s,
              100.0 * (full_ratio - 1.0), identical ? "yes" : "NO");
  return identical ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Serving-scale mode (`--serving-scale`): admission-scale sweep over
// simulated fleet sizes x shard counts. Execution is synthetic (the slot
// probability is a seeded pure function of (seed, job, slot, attempt) —
// see ServeConfig::synthetic_execution), so fleets far wider than any
// interesting circuit workload still drive the full routing, admission,
// mailbox and retry machinery. For each fleet size the identical job
// stream runs under every shard count; the admitted results must be
// bit-identical across shard counts (exit code 2 otherwise — the
// sharded-determinism guarantee). Each configuration records the
// admission rate (jobs/s over the single-threaded submit phase — the
// number the 100k jobs/s target is about), end-to-end throughput, and
// the per-shard queue-lock contention that sharding is meant to keep
// flat as the fleet grows.

struct ScalePoint {
  int fleet = 0;
  int shards = 0;
  std::size_t jobs = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::uint64_t retries = 0;
  std::size_t cross_shard_in = 0;
  double submit_seconds = 0.0;
  double admission_jobs_per_s = 0.0;
  double wall_seconds = 0.0;
  double throughput_jobs_per_s = 0.0;
  std::uint64_t lock_wait_ns_total = 0;
  std::uint64_t lock_wait_ns_max_shard = 0;
  std::uint64_t lock_contentions = 0;
  std::uint64_t doorbell_wakeups = 0;
  std::uint64_t doorbell_backstops = 0;
  bool identical = true;  ///< vs the same fleet's first shard count
  /// Per-window admission series on the modeled virtual clock (the
  /// "serve.ts.admitted" event series) — the trajectory the single
  /// aggregate admission rate used to flatten away.
  double window_virtual_us = 0.0;
  std::vector<telemetry::SeriesWindow> admitted_windows;
};

/// One serving-scale configuration run. `with_series` attaches a
/// virtual-clock TimeSeriesStore to the runtime (per-job observes on the
/// submit path); `with_collector` additionally runs the full real-time
/// pipeline — a Collector thread sampling the global registry with
/// publish_shard_metrics() as its pre-sample hook — which is the "on" arm
/// of the collector overhead A/B.
struct ScaleRun {
  std::vector<serve::JobResult> results;
  serve::ServingReport report;
  double submit_seconds = 0.0;
  double admission_jobs_per_s = 0.0;
  std::string ts_json;  ///< virtual-clock series dump (with_series only)
  telemetry::SeriesSnapshot admitted;
};

int run_serving_scale_mode(const std::string& out_path,
                           const std::vector<int>& fleets,
                           const std::vector<int>& shard_counts,
                           std::size_t n_jobs) {
  std::printf("serving-scale mode: %zu jobs per config, synthetic "
              "execution\n", n_jobs);
  const data::BenchmarkCase bc{"iris", 2, 2};
  const data::EncodedSplit split = data::prepare_case(bc, 42);
  const qnn::QnnModel m(qnn::Backbone::kCRz, bc.num_qubits, bc.num_layers);

  std::vector<ScalePoint> points;
  bool all_identical = true;
  double top_rate = 0.0;
  // Collector A/B + two-run reproducibility run at the sweep's largest
  // fleet with 4 shards when present (the acceptance configuration),
  // else the last shard count.
  const int ab_fleet = fleets.empty() ? 0 : fleets.back();
  int ab_shards = shard_counts.empty() ? 1 : shard_counts.back();
  for (const int s : shard_counts) {
    if (s == 4) ab_shards = 4;
  }
  std::string ab_ts_json;
  bool series_reproducible = true;
  double collector_off_rate = 0.0, collector_on_rate = 0.0;
  double collector_ratio = 0.0;

  for (const int fleet : fleets) {
    std::printf("fleet %d:\n", fleet);
    core::TrainConfig tcfg;
    const core::DistributedTrainer trainer(
        m, device::table3_fleet_cycled(fleet, bc.num_qubits), tcfg);
    math::Rng wrng(42);
    std::vector<std::vector<double>> weights;
    for (int q = 0; q < fleet; ++q) {
      std::vector<double> wq(static_cast<std::size_t>(m.num_weights()));
      math::Rng qrng = wrng.split(static_cast<std::uint64_t>(q));
      for (double& x : wq) x = qrng.normal(0.0, 0.3);
      weights.push_back(std::move(wq));
    }
    // One mid-stream dropout plus a transient rate: the sweep exercises
    // the cross-shard reroute lanes, not just clean admission.
    const serve::FaultInjector faults(
        static_cast<std::size_t>(fleet),
        serve::FaultInjector::parse("kill:1@64,transient:0.01,lag:32,"
                                    "seed:9"));

    // Virtual window sized so the stream spans ~32 windows: total modeled
    // time ≈ jobs × shots × mean shot latency / fleet. Retention is far
    // above the estimate so no window is ever evicted — eviction order is
    // the one thing the bit-identity contract does not cover.
    double mean_lat = 0.0;
    for (const qnn::QnnExecutor& ex : trainer.executors()) {
      mean_lat += ex.shot_latency_us();
    }
    mean_lat /= static_cast<double>(fleet);
    telemetry::TimeSeriesConfig tscfg;
    tscfg.window_us = std::max(
        1.0, static_cast<double>(n_jobs) * 96.0 * mean_lat /
                 static_cast<double>(fleet) / 32.0);
    tscfg.max_windows = 8192;
    tscfg.max_series = 16384;

    const auto run_config = [&](int shards, bool with_series,
                                bool with_collector) {
      serve::ServeConfig sc;
      sc.shots_per_job = 96;
      sc.backoff_base_us = 0.0;  // modeled-only backoff: no real sleeps
      // Size the queue for the whole stream: admission rejects depend
      // on live occupancy and would break the bit-identity check.
      sc.queue_capacity = n_jobs * 8;
      sc.num_shards = shards;
      // Far fewer worker threads than simulated QPUs: each worker
      // stripes its shard's lanes.
      sc.workers_per_shard = 2;
      sc.synthetic_execution = true;
      sc.gauge_cadence_us = 0.0;
      telemetry::TimeSeriesStore ts(tscfg);
      if (with_series) sc.series = &ts;
      serve::ServingRuntime runtime(trainer.executors(), weights,
                                    trainer.behavioral_vectors(), sc,
                                    &faults);
      std::unique_ptr<telemetry::TimeSeriesStore> rt_store;
      std::unique_ptr<telemetry::Collector> collector;
      if (with_collector) {
        rt_store = std::make_unique<telemetry::TimeSeriesStore>();
        telemetry::CollectorOptions co;
        co.cadence_us = 50'000.0;
        co.pre_sample = [&runtime] { runtime.publish_shard_metrics(); };
        collector = std::make_unique<telemetry::Collector>(
            *rt_store, telemetry::MetricsRegistry::global(), co);
        collector->start();
      }
      const double t0 = now_seconds();
      for (std::size_t i = 0; i < n_jobs; ++i) {
        serve::JobSpec spec;
        spec.features = split.test_features[i % split.test_features.size()];
        spec.label = split.test_labels[i % split.test_labels.size()];
        runtime.submit(spec);
      }
      ScaleRun out;
      out.submit_seconds = now_seconds() - t0;
      runtime.drain();
      if (collector) collector->stop();
      out.report = runtime.report();
      out.results = runtime.results();
      out.admission_jobs_per_s =
          out.submit_seconds > 0.0
              ? static_cast<double>(out.report.admitted) / out.submit_seconds
              : 0.0;
      if (with_series) {
        out.ts_json = ts.to_json("serve.ts.");
        for (telemetry::SeriesSnapshot& snap :
             ts.snapshot("serve.ts.admitted")) {
          if (snap.name == "serve.ts.admitted") out.admitted = snap;
        }
      }
      return out;
    };

    std::vector<serve::JobResult> baseline;
    for (const int shards : shard_counts) {
      const ScaleRun run = run_config(shards, true, false);
      const serve::ServingReport& rep = run.report;

      ScalePoint p;
      p.fleet = fleet;
      p.shards = shards;
      p.jobs = n_jobs;
      p.admitted = rep.admitted;
      p.completed = rep.completed;
      p.retries = rep.retries;
      p.submit_seconds = run.submit_seconds;
      p.admission_jobs_per_s = run.admission_jobs_per_s;
      p.wall_seconds = rep.wall_seconds;
      p.throughput_jobs_per_s = rep.throughput_jobs_per_s;
      for (const serve::ShardStats& s : rep.shards) {
        p.cross_shard_in += s.cross_shard_in;
        p.lock_wait_ns_total += s.lock_wait_ns;
        p.lock_wait_ns_max_shard =
            std::max(p.lock_wait_ns_max_shard, s.lock_wait_ns);
        p.lock_contentions += s.lock_contentions;
        p.doorbell_wakeups += s.doorbell_wakeups;
        p.doorbell_backstops += s.doorbell_backstops;
      }
      p.window_virtual_us = run.admitted.window_us;
      p.admitted_windows = run.admitted.windows;
      if (baseline.empty()) {
        baseline = run.results;
      } else {
        p.identical = run.results.size() == baseline.size();
        for (std::size_t i = 0; p.identical && i < run.results.size();
             ++i) {
          p.identical =
              run.results[i].status == baseline[i].status &&
              run.results[i].probability == baseline[i].probability &&
              run.results[i].retries == baseline[i].retries &&
              run.results[i].virtual_latency_us ==
                  baseline[i].virtual_latency_us;
        }
      }
      all_identical &= p.identical;
      top_rate = std::max(top_rate, p.admission_jobs_per_s);
      std::printf("  shards=%-3d admission %9.0f jobs/s  e2e %9.0f "
                  "jobs/s  lock max/shard %6.2fms  cross-shard %zu  "
                  "identical=%s  (%zu windows)\n",
                  shards, p.admission_jobs_per_s, p.throughput_jobs_per_s,
                  static_cast<double>(p.lock_wait_ns_max_shard) / 1e6,
                  p.cross_shard_in, p.identical ? "yes" : "NO",
                  p.admitted_windows.size());
      if (fleet == ab_fleet && shards == ab_shards) {
        ab_ts_json = run.ts_json;
      }
      points.push_back(std::move(p));
    }

    if (fleet == ab_fleet) {
      // Two-run reproducibility: an identical re-run of the acceptance
      // configuration must dump byte-identical virtual-clock series.
      const ScaleRun rerun = run_config(ab_shards, true, false);
      series_reproducible =
          !ab_ts_json.empty() && rerun.ts_json == ab_ts_json;
      std::printf("  series reproducible across two runs: %s "
                  "(%zu bytes)\n",
                  series_reproducible ? "yes" : "NO", ab_ts_json.size());

      // Collector A/B: one discarded warm-up, then adjacent off/on pairs.
      // "On" is the full pipeline — per-job series observes plus a live
      // Collector thread. The submit phase is ~100ms with worker threads
      // churning alongside, so single-pair ratios are noisy; the headline
      // overhead compares per-arm best rates (the per-arm-minima
      // convention the other A/B modes use).
      (void)run_config(ab_shards, false, false);
      double off_best = 0.0, on_best = 0.0;
      for (int rep = 0; rep < 5; ++rep) {
        const ScaleRun off = run_config(ab_shards, false, false);
        const ScaleRun on = run_config(ab_shards, true, true);
        off_best = std::max(off_best, off.admission_jobs_per_s);
        on_best = std::max(on_best, on.admission_jobs_per_s);
      }
      collector_off_rate = off_best;
      collector_on_rate = on_best;
      collector_ratio = on_best > 0.0 ? off_best / on_best : 0.0;
      std::printf("  collector A/B (fleet %d x %d shards): off %.0f "
                  "jobs/s  on %.0f jobs/s  overhead %+.2f%% (target "
                  "<= 5%%)\n",
                  ab_fleet, ab_shards, collector_off_rate,
                  collector_on_rate, 100.0 * (collector_ratio - 1.0));
    }
  }

  // Watchdog acceptance probe: a synthetic queue-saturation ramp (steady
  // depth, then doubling every window) must be flagged within 2 windows
  // of the ramp start.
  std::int64_t ramp_flagged_window = -1;
  const std::int64_t ramp_start = 6;
  {
    telemetry::TimeSeriesConfig wtc;
    wtc.window_us = 1000.0;
    telemetry::TimeSeriesStore wstore(wtc);
    monitor::AnomalyWatchdog dog;
    double depth = 100.0;
    for (std::int64_t w = 0; w < 12; ++w) {
      if (w >= ramp_start) depth *= 2.0;
      telemetry::MetricsSnapshot snap;
      snap.gauges.push_back({"serve.queue.depth", depth});
      wstore.sample(snap, (static_cast<double>(w) + 0.5) * wtc.window_us);
      for (const monitor::AnomalyEvent& ev : dog.poll(wstore)) {
        if (ev.kind == monitor::AnomalyKind::kQueueSaturation &&
            ramp_flagged_window < 0) {
          ramp_flagged_window = ev.window;
        }
      }
    }
  }
  const bool ramp_flagged = ramp_flagged_window >= 0 &&
                            ramp_flagged_window - ramp_start < 2;
  std::printf("watchdog ramp: start window %lld, flagged window %lld "
              "(%s)\n",
              static_cast<long long>(ramp_start),
              static_cast<long long>(ramp_flagged_window),
              ramp_flagged ? "within 2 windows" : "MISSED");

  std::string e;
  jsonf(&e, "    {\"timestamp\": \"%s\",\n", utc_timestamp().c_str());
  jsonf(&e, "     \"jobs_per_config\": %zu, \"synthetic_execution\": true, "
            "\"faults\": \"kill:1@64,transient:0.01,lag:32,seed:9\",\n",
        n_jobs);
  jsonf(&e, "     \"admission_rate\": \"admitted jobs / single-threaded "
            "submit-phase seconds\",\n");
  jsonf(&e, "     \"top_admission_jobs_per_s\": %.0f, "
            "\"target_admission_jobs_per_s\": 100000,\n", top_rate);
  jsonf(&e, "     \"identical_across_shard_counts\": %s,\n",
        all_identical ? "true" : "false");
  jsonf(&e, "     \"collector_ab\": {\"fleet\": %d, \"shards\": %d, "
            "\"pairs\": 5, \"rates\": \"per-arm best of 5 paired runs\", "
            "\"admission_off_jobs_per_s\": %.1f, "
            "\"admission_on_jobs_per_s\": %.1f,\n", ab_fleet, ab_shards,
        collector_off_rate, collector_on_rate);
  jsonf(&e, "       \"overhead_ratio\": %.4f, \"overhead_percent\": %.2f, "
            "\"overhead_target_percent\": 5.0},\n", collector_ratio,
        100.0 * (collector_ratio - 1.0));
  jsonf(&e, "     \"series_reproducible\": %s,\n",
        series_reproducible ? "true" : "false");
  jsonf(&e, "     \"watchdog_ramp\": {\"ramp_start_window\": %lld, "
            "\"flagged_window\": %lld, \"flagged_within_2\": %s},\n",
        static_cast<long long>(ramp_start),
        static_cast<long long>(ramp_flagged_window),
        ramp_flagged ? "true" : "false");
  jsonf(&e, "     \"configs\": [");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    jsonf(&e,
          "%s\n      {\"fleet\": %d, \"shards\": %d, \"jobs\": %zu, "
          "\"admitted\": %zu, \"completed\": %zu, \"retries\": %llu, "
          "\"cross_shard_batches\": %zu,\n       \"submit_seconds\": %.6f, "
          "\"admission_jobs_per_s\": %.1f, \"wall_seconds\": %.6f, "
          "\"throughput_jobs_per_s\": %.1f,\n       \"lock_wait_ms_total\": "
          "%.3f, \"lock_wait_ms_max_shard\": %.3f, \"lock_contentions\": "
          "%llu,\n       \"doorbell_wakeups\": %llu, "
          "\"doorbell_backstops\": %llu, \"identical\": %s,\n",
          i ? "," : "", p.fleet, p.shards, p.jobs, p.admitted, p.completed,
          static_cast<unsigned long long>(p.retries), p.cross_shard_in,
          p.submit_seconds, p.admission_jobs_per_s, p.wall_seconds,
          p.throughput_jobs_per_s,
          static_cast<double>(p.lock_wait_ns_total) / 1e6,
          static_cast<double>(p.lock_wait_ns_max_shard) / 1e6,
          static_cast<unsigned long long>(p.lock_contentions),
          static_cast<unsigned long long>(p.doorbell_wakeups),
          static_cast<unsigned long long>(p.doorbell_backstops),
          p.identical ? "true" : "false");
    // The admission trajectory on the modeled virtual clock: one entry
    // per window. Capped at 96 windows per config so a mis-estimated
    // window width cannot bloat the file; the cap is recorded, never
    // silent.
    constexpr std::size_t kMaxEmit = 96;
    const std::size_t emit = std::min(p.admitted_windows.size(), kMaxEmit);
    jsonf(&e, "       \"admission_windows\": {\"window_virtual_us\": %.1f, "
              "\"total_windows\": %zu, \"truncated\": %s, \"series\": [",
          p.window_virtual_us, p.admitted_windows.size(),
          p.admitted_windows.size() > kMaxEmit ? "true" : "false");
    for (std::size_t wi = 0; wi < emit; ++wi) {
      const telemetry::SeriesWindow& w = p.admitted_windows[wi];
      const double rate =
          p.window_virtual_us > 0.0
              ? static_cast<double>(w.count) / (p.window_virtual_us / 1e6)
              : 0.0;
      jsonf(&e, "%s{\"w\": %lld, \"jobs\": %llu, \"rate_per_virtual_s\": "
                "%.1f}", wi ? ", " : "",
            static_cast<long long>(w.index),
            static_cast<unsigned long long>(w.count), rate);
    }
    jsonf(&e, "]}}");
  }
  jsonf(&e, "\n     ]}");
  if (const int rc = append_run_entry(out_path, "serving-scale", e)) {
    return rc;
  }
  std::printf("serving-scale: top admission %.0f jobs/s (target 100000), "
              "identical=%s, series_reproducible=%s, ramp_flagged=%s, "
              "collector overhead %+.2f%%\n",
              top_rate, all_identical ? "yes" : "NO",
              series_reproducible ? "yes" : "NO",
              ramp_flagged ? "yes" : "NO",
              100.0 * (collector_ratio - 1.0));
  return all_identical && series_reproducible && ramp_flagged ? 0 : 2;
}

// ---------------------------------------------------------------------------
// Fairness mode (`--fairness`): the multi-tenant QoS acceptance
// scenario. An adversarial open-loop traffic mix (one flooding
// best-effort tenant, two heavy bulk tenants, four light interactive
// tenants — see serve::adversarial_mix) is replayed through the sharded
// runtime under every arbiter. Execution is synthetic and the whole
// stream is submitted before the workers start (saturated-backlog
// replay), so with model_queue_wait the wait-inclusive virtual latency
// of every job is a pure function of (arrival sequence, arbiter) —
// bit-identical across runs and shard counts (exit 2 otherwise).
//
// Fairness is scored per arbiter with a Jain index over
// service/entitlement ratios: service is the jobs a tenant got finished
// within the modeled horizon, entitlement is its weighted max-min
// (water-filled) share of the total service the arbiter actually
// delivered. Gates (exit 2 on failure): weighted_credit Jain >= 0.9
// with the interactive class p99 inside the SLO target, aggregate
// admission within 10% of FIFO, and bit-identity everywhere. FIFO's
// numbers land in the same JSON entry as the side-by-side starvation
// evidence.

double vec_percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  return v[lo] + (v[hi] - v[lo]) * (pos - static_cast<double>(lo));
}

/// Weighted max-min water-filling: distribute `capacity` across tenants
/// proportional to weight, cap each at its demand, redistribute the
/// surplus among the uncapped until none caps or capacity is exhausted.
std::vector<double> waterfill_entitlements(
    const std::vector<double>& weight, const std::vector<double>& demand,
    double capacity) {
  const std::size_t n = weight.size();
  std::vector<double> ent(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = capacity;
  for (;;) {
    double wsum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!capped[i]) wsum += std::max(0.0, weight[i]);
    }
    if (wsum <= 0.0 || remaining <= 1e-9) break;
    bool newly_capped = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i] || weight[i] <= 0.0) continue;
      const double share = remaining * weight[i] / wsum;
      if (share >= demand[i]) {
        ent[i] = demand[i];
        capped[i] = true;
        remaining -= demand[i];
        newly_capped = true;
      }
    }
    if (!newly_capped) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!capped[i] && weight[i] > 0.0) {
          ent[i] = remaining * weight[i] / wsum;
        }
      }
      break;
    }
  }
  return ent;
}

struct FairnessTenantRow {
  std::string name;
  double weight = 1.0;
  std::size_t arrivals = 0;
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t served_in_horizon = 0;
  double entitled = 0.0;
  double ratio = 0.0;  ///< served / entitled
  double p50_us = 0.0;
  double p99_us = 0.0;
};

struct FairnessClassRow {
  std::size_t jobs = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double compliance = 1.0;  ///< from the attached SloEngine
};

struct FairnessArbiterResult {
  serve::ArbiterKind kind = serve::ArbiterKind::kFifo;
  bool identical = true;  ///< across shard counts and a re-run
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t served_in_horizon = 0;
  double jain = 0.0;
  std::string starved_tenant;  ///< min service/entitlement ratio
  double starved_ratio = 0.0;
  std::vector<FairnessTenantRow> tenants;
  FairnessClassRow classes[monitor::kNumSloClasses];
};

int run_fairness_mode(const std::string& out_path, int fleet,
                      const std::vector<int>& shard_counts, double scale) {
  if (fleet < 1 || shard_counts.empty() || scale <= 0.0) {
    std::fprintf(stderr, "fairness: bad fleet/shards/scale\n");
    return 1;
  }
  const data::BenchmarkCase bc{"iris", 2, 2};
  const qnn::QnnModel m(qnn::Backbone::kCRz, bc.num_qubits, bc.num_layers);
  core::TrainConfig tcfg;
  const core::DistributedTrainer trainer(
      m, device::table3_fleet_cycled(fleet, bc.num_qubits), tcfg);
  math::Rng wrng(42);
  std::vector<std::vector<double>> weights;
  for (int q = 0; q < fleet; ++q) {
    std::vector<double> wq(static_cast<std::size_t>(m.num_weights()));
    math::Rng qrng = wrng.split(static_cast<std::uint64_t>(q));
    for (double& x : wq) x = qrng.normal(0.0, 0.3);
    weights.push_back(std::move(wq));
  }

  // Scale the scenario to the modeled fleet: capacity is the jobs the
  // whole fleet completes per modeled second, and the horizon is sized
  // so the mix (mean demand ~3.1x capacity, see adversarial_mix) yields
  // ~12k jobs at scale 1.
  const int shots = 96;
  double mean_lat = 0.0;
  for (const qnn::QnnExecutor& ex : trainer.executors()) {
    mean_lat += ex.shot_latency_us();
  }
  mean_lat /= static_cast<double>(fleet);
  const double capacity_jobs_per_s =
      static_cast<double>(fleet) * 1e6 /
      (static_cast<double>(shots) * mean_lat);
  const double target_jobs = std::max(200.0, 12000.0 * scale);
  const double duration_s = target_jobs / (3.12 * capacity_jobs_per_s);
  const double horizon_us = duration_s * 1e6;
  // Interactive SLO: wait-inclusive p99 within 16 serial job executions
  // — a handful of queued batches, versus the O(backlog) wait a FIFO
  // dequeue leaves the interactive tenants with.
  const double slo_target_us =
      16.0 * static_cast<double>(shots) * mean_lat;

  serve::TrafficGenerator gen(
      serve::adversarial_mix(7, duration_s, capacity_jobs_per_s));
  const std::vector<serve::GeneratedJob> stream = gen.generate_all();
  const std::vector<serve::TenantSpec> tenant_rows = gen.tenant_specs();
  std::map<std::string, std::size_t> tenant_index;
  std::vector<std::size_t> arrivals(tenant_rows.size(), 0);
  for (std::size_t t = 0; t < tenant_rows.size(); ++t) {
    tenant_index[tenant_rows[t].name] = t;
  }
  for (const serve::GeneratedJob& g : stream) ++arrivals[g.tenant];
  std::printf("fairness mode: fleet %d, %zu jobs over %.4f modeled s "
              "(capacity %.0f jobs/s, slo target %.0f us)\n",
              fleet, stream.size(), duration_s, capacity_jobs_per_s,
              slo_target_us);

  monitor::SloPolicy policy;
  policy.objectives[static_cast<std::size_t>(
      monitor::SloClass::kLatencyBound)] = {slo_target_us, 0.05};
  policy.objectives[static_cast<std::size_t>(
      monitor::SloClass::kThroughputBound)] = {0.0, 0.25};
  policy.objectives[static_cast<std::size_t>(
      monitor::SloClass::kBestEffort)] = {0.0, 0.5};

  struct OneRun {
    std::vector<serve::JobResult> results;
    serve::ServingReport report;
    monitor::SloReport slo;
  };
  const auto run_one = [&](serve::ArbiterKind kind, int shards) {
    serve::ServeConfig sc;
    sc.shots_per_job = shots;
    sc.backoff_base_us = 0.0;
    sc.queue_capacity = stream.size() * 32;  // never reject on capacity
    sc.num_shards = shards;
    sc.workers_per_shard = 2;
    sc.synthetic_execution = true;
    sc.gauge_cadence_us = 0.0;
    sc.autostart = false;  // saturated-backlog replay: submit, then run
    sc.model_queue_wait = true;
    sc.arbiter = kind;
    sc.tenants = tenant_rows;
    monitor::SloEngine slo(policy);
    serve::ServingRuntime rt(trainer.executors(), weights,
                             trainer.behavioral_vectors(), sc, nullptr,
                             nullptr, nullptr, &slo);
    for (const serve::GeneratedJob& g : stream) rt.submit(g.spec);
    rt.start();
    rt.drain();
    OneRun out;
    out.results = rt.results();
    out.report = rt.report();
    out.slo = slo.report();
    return out;
  };
  const auto same_results = [](const std::vector<serve::JobResult>& a,
                               const std::vector<serve::JobResult>& b) {
    if (a.size() != b.size()) {
      std::fprintf(stderr, "  mismatch: %zu vs %zu results\n", a.size(),
                   b.size());
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].status != b[i].status ||
          a[i].probability != b[i].probability ||
          a[i].retries != b[i].retries ||
          a[i].virtual_latency_us != b[i].virtual_latency_us ||
          a[i].admit_virtual_us != b[i].admit_virtual_us) {
        std::fprintf(stderr,
                     "  mismatch at job %zu (%s): vlat %.6f vs %.6f, "
                     "p %.9f vs %.9f\n",
                     i, a[i].tenant.c_str(), a[i].virtual_latency_us,
                     b[i].virtual_latency_us, a[i].probability,
                     b[i].probability);
        return false;
      }
    }
    return true;
  };

  const serve::ArbiterKind kinds[] = {
      serve::ArbiterKind::kFifo, serve::ArbiterKind::kRoundRobin,
      serve::ArbiterKind::kMatrix, serve::ArbiterKind::kWeightedCredit};
  std::vector<FairnessArbiterResult> rows;
  for (const serve::ArbiterKind kind : kinds) {
    FairnessArbiterResult row;
    row.kind = kind;
    OneRun last;
    std::vector<serve::JobResult> baseline;
    for (const int shards : shard_counts) {
      last = run_one(kind, shards);
      if (baseline.empty()) {
        baseline = last.results;
      } else if (!same_results(baseline, last.results)) {
        row.identical = false;
      }
    }
    // Same config twice: the replay itself must reproduce.
    if (!same_results(baseline,
                      run_one(kind, shard_counts.back()).results)) {
      row.identical = false;
    }

    const serve::ServingReport& rep = last.report;
    row.admitted = rep.admitted;
    row.completed = rep.completed;
    std::vector<std::size_t> served(tenant_rows.size(), 0);
    std::vector<double> class_lat[monitor::kNumSloClasses];
    for (const serve::JobResult& r : last.results) {
      if (r.status != serve::JobStatus::kOk) continue;
      const double finish = r.admit_virtual_us + r.virtual_latency_us;
      const auto it = tenant_index.find(r.tenant);
      if (it != tenant_index.end() && finish <= horizon_us) {
        ++served[it->second];
      }
      class_lat[static_cast<std::size_t>(r.slo_class)].push_back(
          r.virtual_latency_us);
    }
    for (std::size_t c = 0; c < monitor::kNumSloClasses; ++c) {
      row.classes[c].jobs = class_lat[c].size();
      row.classes[c].p50_us = vec_percentile(class_lat[c], 0.50);
      row.classes[c].p99_us = vec_percentile(class_lat[c], 0.99);
    }
    for (const monitor::SloClassReport& cr : last.slo.classes) {
      row.classes[static_cast<std::size_t>(cr.cls)].compliance =
          cr.compliance;
    }

    // Jain over service/entitlement: each tenant's in-horizon service
    // against its water-filled share of the service this arbiter
    // actually delivered inside the horizon.
    std::vector<double> w(tenant_rows.size()), demand(tenant_rows.size());
    double total_served = 0.0;
    for (std::size_t t = 0; t < tenant_rows.size(); ++t) {
      w[t] = tenant_rows[t].weight;
      demand[t] = static_cast<double>(arrivals[t]);
      total_served += static_cast<double>(served[t]);
      row.served_in_horizon += served[t];
    }
    const std::vector<double> entitled =
        waterfill_entitlements(w, demand, total_served);
    double sum = 0.0, sum_sq = 0.0;
    std::size_t n_rated = 0;
    for (std::size_t t = 0; t < tenant_rows.size(); ++t) {
      FairnessTenantRow tr;
      tr.name = tenant_rows[t].name;
      tr.weight = tenant_rows[t].weight;
      tr.arrivals = arrivals[t];
      tr.served_in_horizon = served[t];
      tr.entitled = entitled[t];
      for (const serve::TenantReport& trep : rep.tenants) {
        if (trep.name != tr.name) continue;
        tr.admitted = trep.admitted;
        tr.completed = trep.completed;
        tr.p50_us = trep.p50_virtual_latency_us;
        tr.p99_us = trep.p99_virtual_latency_us;
      }
      if (entitled[t] > 1e-9) {
        tr.ratio = static_cast<double>(served[t]) / entitled[t];
        sum += tr.ratio;
        sum_sq += tr.ratio * tr.ratio;
        ++n_rated;
        if (row.starved_tenant.empty() || tr.ratio < row.starved_ratio) {
          row.starved_tenant = tr.name;
          row.starved_ratio = tr.ratio;
        }
      }
      row.tenants.push_back(std::move(tr));
    }
    row.jain = sum_sq > 0.0
                   ? sum * sum / (static_cast<double>(n_rated) * sum_sq)
                   : 0.0;
    const std::size_t lat_c =
        static_cast<std::size_t>(monitor::SloClass::kLatencyBound);
    std::printf("  %-16s jain %.3f  admitted %6zu  served@T %6zu  "
                "int p99 %10.0f us (slo %s)  starved %s=%.2f  "
                "identical=%s\n",
                serve::arbiter_kind_name(kind).c_str(), row.jain,
                row.admitted, row.served_in_horizon,
                row.classes[lat_c].p99_us,
                row.classes[lat_c].p99_us <= slo_target_us ? "ok" : "MISS",
                row.starved_tenant.c_str(), row.starved_ratio,
                row.identical ? "yes" : "NO");
    rows.push_back(std::move(row));
  }

  // Gates: everything deterministic; weighted_credit fair (Jain >= 0.9)
  // with the interactive p99 inside the SLO while admitting within 10%
  // of FIFO's aggregate.
  const FairnessArbiterResult& fifo = rows[0];
  const FairnessArbiterResult& wc = rows[3];
  const std::size_t lat_c =
      static_cast<std::size_t>(monitor::SloClass::kLatencyBound);
  bool all_identical = true;
  for (const FairnessArbiterResult& r : rows) all_identical &= r.identical;
  const bool jain_ok = wc.jain >= 0.9;
  const bool slo_ok = wc.classes[lat_c].p99_us <= slo_target_us;
  const bool admission_ok =
      fifo.admitted > 0 &&
      std::abs(static_cast<double>(wc.admitted) -
               static_cast<double>(fifo.admitted)) <=
          0.10 * static_cast<double>(fifo.admitted);

  std::string e;
  jsonf(&e, "    {\"timestamp\": \"%s\",\n", utc_timestamp().c_str());
  jsonf(&e, "     \"fleet\": %d, \"jobs\": %zu, \"duration_modeled_s\": "
            "%.6f, \"capacity_jobs_per_s\": %.1f,\n",
        fleet, stream.size(), duration_s, capacity_jobs_per_s);
  jsonf(&e, "     \"shots_per_job\": %d, \"slo_target_us\": %.1f, "
            "\"scenario\": \"adversarial_mix(seed=7)\", \"shards\": [",
        shots, slo_target_us);
  for (std::size_t i = 0; i < shard_counts.size(); ++i) {
    jsonf(&e, "%s%d", i ? ", " : "", shard_counts[i]);
  }
  jsonf(&e, "],\n");
  jsonf(&e, "     \"gates\": {\"identical\": %s, \"wc_jain_ge_0.9\": %s, "
            "\"wc_int_p99_in_slo\": %s, \"wc_admission_within_10pct\": "
            "%s},\n",
        all_identical ? "true" : "false", jain_ok ? "true" : "false",
        slo_ok ? "true" : "false", admission_ok ? "true" : "false");
  jsonf(&e, "     \"arbiters\": [");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const FairnessArbiterResult& r = rows[i];
    jsonf(&e, "%s\n      {\"arbiter\": \"%s\", \"identical\": %s, "
              "\"jain\": %.4f, \"admitted\": %zu, \"completed\": %zu, "
              "\"served_in_horizon\": %zu,\n       \"starved_tenant\": "
              "\"%s\", \"starved_ratio\": %.4f,\n",
          i ? "," : "", serve::arbiter_kind_name(r.kind).c_str(),
          r.identical ? "true" : "false", r.jain, r.admitted, r.completed,
          r.served_in_horizon, r.starved_tenant.c_str(), r.starved_ratio);
    jsonf(&e, "       \"classes\": [");
    for (std::size_t c = 0; c < monitor::kNumSloClasses; ++c) {
      jsonf(&e, "%s{\"class\": \"%s\", \"jobs\": %zu, \"p50_us\": %.1f, "
                "\"p99_us\": %.1f, \"compliance\": %.4f}",
            c ? ", " : "",
            monitor::slo_class_name(static_cast<monitor::SloClass>(c))
                .c_str(),
            r.classes[c].jobs, r.classes[c].p50_us, r.classes[c].p99_us,
            r.classes[c].compliance);
    }
    jsonf(&e, "],\n       \"tenants\": [");
    for (std::size_t t = 0; t < r.tenants.size(); ++t) {
      const FairnessTenantRow& tr = r.tenants[t];
      jsonf(&e, "%s\n        {\"name\": \"%s\", \"weight\": %.1f, "
                "\"arrivals\": %zu, \"admitted\": %zu, \"completed\": "
                "%zu, \"served_in_horizon\": %zu, \"entitled\": %.1f, "
                "\"service_ratio\": %.4f, \"p50_us\": %.1f, \"p99_us\": "
                "%.1f}",
            t ? "," : "", tr.name.c_str(), tr.weight, tr.arrivals,
            tr.admitted, tr.completed, tr.served_in_horizon, tr.entitled,
            tr.ratio, tr.p50_us, tr.p99_us);
    }
    jsonf(&e, "]}");
  }
  jsonf(&e, "\n     ]}");
  if (const int rc = append_run_entry(out_path, "fairness", e)) {
    return rc;
  }
  const bool ok = all_identical && jain_ok && slo_ok && admission_ok;
  std::printf("fairness: wc jain %.3f (>= 0.9 %s)  wc int p99 %.0f us "
              "(slo %.0f us %s)  admission wc/fifo %zu/%zu (%s)  "
              "identical=%s -> %s\n",
              wc.jain, jain_ok ? "ok" : "FAIL", wc.classes[lat_c].p99_us,
              slo_target_us, slo_ok ? "ok" : "FAIL", wc.admitted,
              fifo.admitted, admission_ok ? "ok" : "FAIL",
              all_identical ? "yes" : "NO", ok ? "PASS" : "FAIL");
  return ok ? 0 : 2;
}

std::vector<int> parse_int_list(const char* csv) {
  std::vector<int> out;
  std::string tok;
  for (const char* c = csv;; ++c) {
    if (*c == ',' || *c == '\0') {
      if (!tok.empty()) out.push_back(std::atoi(tok.c_str()));
      tok.clear();
      if (*c == '\0') break;
    } else {
      tok.push_back(*c);
    }
  }
  return out;
}

}  // namespace

// Expanded BENCHMARK_MAIN(): `--threads N` switches to the thread-scaling
// mode above; otherwise the google-benchmark suite runs. Either way the
// telemetry accumulated across every iteration (simulator/transpiler
// counters and the trace ring) can be dumped as JSONL by setting
// $ARBITERQ_TELEMETRY_PATH (no file is written when it is unset).
int main(int argc, char** argv) {
  int scaling_threads = 0;
  int scaling_fleet = 8;
  int scaling_epochs = 4;
  bool plan_ab = false;
  bool telemetry_ab = false;
  bool serving = false;
  bool serving_obs = false;
  bool serving_scale = false;
  bool fairness = false;
  int serving_jobs = 400;
  std::vector<int> scale_fleets = {64, 256};
  std::vector<int> scale_shards = {1, 4, 16};
  int scale_jobs = 20000;
  int fairness_fleet = 256;
  std::vector<int> fairness_shards = {1, 2, 4};
  double fairness_scale = 1.0;
  std::string scaling_out = "BENCH_perf.json";
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--threads") {
      if (const char* v = next()) scaling_threads = std::atoi(v);
    } else if (flag == "--plan-ab") {
      plan_ab = true;
    } else if (flag == "--no-simd") {
      // Force the portable scalar kernels for every mode (same effect
      // as ARBITERQ_SIMD=OFF). --plan-ab still clocks its scalar arms
      // but dispatches SIMD arms to scalar, so the matrix degenerates
      // to a batched-vs-unbatched comparison.
      arbiterq::sim::kernels::set_simd_runtime_enabled(false);
    } else if (flag == "--telemetry-ab") {
      telemetry_ab = true;
    } else if (flag == "--serving") {
      serving = true;
    } else if (flag == "--serving-obs") {
      serving_obs = true;
    } else if (flag == "--serving-jobs") {
      if (const char* v = next()) serving_jobs = std::atoi(v);
    } else if (flag == "--serving-scale") {
      serving_scale = true;
    } else if (flag == "--fairness") {
      fairness = true;
    } else if (flag == "--fairness-fleet") {
      if (const char* v = next()) fairness_fleet = std::atoi(v);
    } else if (flag == "--fairness-shards") {
      if (const char* v = next()) fairness_shards = parse_int_list(v);
    } else if (flag == "--fairness-scale") {
      if (const char* v = next()) fairness_scale = std::atof(v);
    } else if (flag == "--scale-fleets") {
      if (const char* v = next()) scale_fleets = parse_int_list(v);
    } else if (flag == "--scale-shards") {
      if (const char* v = next()) scale_shards = parse_int_list(v);
    } else if (flag == "--scale-jobs") {
      if (const char* v = next()) scale_jobs = std::atoi(v);
    } else if (flag == "--scaling-fleet") {
      if (const char* v = next()) scaling_fleet = std::atoi(v);
    } else if (flag == "--scaling-epochs") {
      if (const char* v = next()) scaling_epochs = std::atoi(v);
    } else if (flag == "--scaling-out") {
      if (const char* v = next()) scaling_out = v;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  const std::size_t n_serving_jobs =
      serving_jobs > 0 ? static_cast<std::size_t>(serving_jobs) : 400;
  int rc = 0;
  if (plan_ab) {
    rc = run_plan_ab_mode(scaling_out);
  } else if (serving) {
    rc = run_serving_mode(scaling_out, n_serving_jobs);
  } else if (serving_obs) {
    rc = run_serving_obs_mode(scaling_out, n_serving_jobs);
  } else if (serving_scale) {
    rc = run_serving_scale_mode(
        scaling_out, scale_fleets, scale_shards,
        scale_jobs > 0 ? static_cast<std::size_t>(scale_jobs) : 20000);
  } else if (fairness) {
    rc = run_fairness_mode(scaling_out, fairness_fleet, fairness_shards,
                           fairness_scale);
  } else if (telemetry_ab) {
    rc = run_telemetry_ab_mode(scaling_out);
  } else if (scaling_threads != 0) {
    rc = run_scaling_mode(arbiterq::exec::resolve_threads(scaling_threads),
                          scaling_fleet, scaling_epochs, scaling_out);
  } else {
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               passthrough.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  // The telemetry dump is opt-in: unset ARBITERQ_TELEMETRY_PATH means no
  // file — benches invoked from a repo checkout must not litter it.
  const char* env = std::getenv("ARBITERQ_TELEMETRY_PATH");
  if (env != nullptr && env[0] != '\0') {
    try {
      arbiterq::telemetry::JsonlExporter exporter(env);
      exporter.write_global_state();
      exporter.close();
      std::printf("(wrote %s: %zu telemetry lines)\n", env,
                  exporter.lines_written());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry dump failed: %s\n", e.what());
    }
  } else {
    std::printf("(telemetry dump skipped; set ARBITERQ_TELEMETRY_PATH to "
                "write the JSONL)\n");
  }
  return rc;
}
